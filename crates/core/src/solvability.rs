//! Computability of GSB tasks (Section 5 of the paper).
//!
//! This module implements the paper's solvability results as an executable
//! classifier:
//!
//! * **Theorem 9** — a symmetric task with `m > 1` is solvable with *no
//!   communication* iff `ℓ = 0 ∧ ⌈(2n−1)/m⌉ ≤ u`; we also provide the
//!   witness partition of the identity space and a brute-force
//!   cross-validator, plus an interval-based generalization to asymmetric
//!   tasks.
//! * **Theorem 10** — if `gcd{ C(n,i) : 1 ≤ i ≤ ⌊n/2⌋ } > 1` (the set is
//!   "not prime"), then `⟨n,m,1,u⟩` is not wait-free solvable for any `u`;
//!   by output-set containment this extends to every `ℓ ≥ 1`.
//! * **Theorem 11 / Corollary 5** — election and perfect renaming are not
//!   wait-free solvable.
//! * Known positive results quoted by the paper: `(2n−1)`-renaming is
//!   trivially solvable, `(2n−2)`-renaming and WSB are wait-free
//!   equivalent and solvable exactly when the binomial gcd is 1.

use crate::spec::{GsbSpec, SymmetricGsb};

/// The solvability status of a GSB task in the wait-free model
/// `ASM_{n,n−1}[∅]`, as established by the paper's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Solvability {
    /// The output set is empty (Lemma 1/2); nothing to solve.
    Infeasible,
    /// Solvable with **no communication at all** (Theorem 9).
    SolvableWithoutCommunication,
    /// Wait-free solvable using read/write registers (communication
    /// needed).
    WaitFreeSolvable,
    /// Not wait-free solvable by any read/write algorithm.
    NotWaitFreeSolvable,
    /// Not settled by the paper's results (several such frontiers are the
    /// paper's §7 open problems).
    Open,
}

impl Solvability {
    /// Stable machine-readable label, the inverse of
    /// [`Solvability::from_label`]. This is what the engine's JSON
    /// reports emit; [`Display`](std::fmt::Display) uses the same
    /// strings, so human and machine output never diverge.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Solvability::Infeasible => "infeasible",
            Solvability::SolvableWithoutCommunication => "solvable with no communication",
            Solvability::WaitFreeSolvable => "wait-free solvable",
            Solvability::NotWaitFreeSolvable => "not wait-free solvable",
            Solvability::Open => "open",
        }
    }

    /// Parses a [`Solvability::label`] back into the verdict (the JSON
    /// round-trip path). Returns `None` for unknown labels.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        [
            Solvability::Infeasible,
            Solvability::SolvableWithoutCommunication,
            Solvability::WaitFreeSolvable,
            Solvability::NotWaitFreeSolvable,
            Solvability::Open,
        ]
        .into_iter()
        .find(|s| s.label() == label)
    }

    /// Whether the verdict asserts the task **is** wait-free solvable
    /// (with or without communication).
    #[must_use]
    pub fn is_positive(self) -> bool {
        matches!(
            self,
            Solvability::SolvableWithoutCommunication | Solvability::WaitFreeSolvable
        )
    }

    /// Whether the verdict asserts the task is **not** wait-free solvable
    /// (or has no outputs at all).
    #[must_use]
    pub fn is_negative(self) -> bool {
        matches!(
            self,
            Solvability::NotWaitFreeSolvable | Solvability::Infeasible
        )
    }
}

impl std::fmt::Display for Solvability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A solvability verdict together with the paper result justifying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// The verdict.
    pub solvability: Solvability,
    /// Which theorem/corollary (or chain of reductions) justifies it.
    pub justification: String,
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.solvability, self.justification)
    }
}

/// Largest `n` accepted by [`binomial_gcd`] (`C(n, n/2)` must fit `u128`).
pub const BINOMIAL_GCD_MAX_N: usize = 130;

/// `gcd{ C(n,i) : 1 ≤ i ≤ ⌊n/2⌋ }`, the quantity of Theorem 10 (due to
/// Castañeda and Rajsbaum, the paper's \[17\]).
///
/// The set is called *prime* when this gcd is 1. A classical fact (checked
/// in tests): the gcd exceeds 1 exactly when `n` is a prime power, in which
/// case it equals that prime.
///
/// The full table up to [`BINOMIAL_GCD_MAX_N`] is computed once and served
/// from a process-wide [`OnceLock`](std::sync::OnceLock) cache — the
/// classifier consults this quantity for every task of an atlas sweep.
/// [`binomial_gcd_uncached`] retains the direct computation (the cache's
/// initializer and the cross-check tests).
///
/// # Panics
///
/// Panics if `n < 2` or `n > 130` (the binomials would overflow `u128`).
///
/// # Examples
///
/// ```
/// use gsb_core::solvability::binomial_gcd;
///
/// assert_eq!(binomial_gcd(4), 2);  // 4 = 2²: C(4,1)=4, C(4,2)=6 → gcd 2
/// assert_eq!(binomial_gcd(6), 1);  // 6 = 2·3: gcd{6,15,20} = 1
/// ```
#[must_use]
pub fn binomial_gcd(n: usize) -> u128 {
    assert!(n >= 2, "binomial_gcd needs n ≥ 2");
    assert!(
        n <= BINOMIAL_GCD_MAX_N,
        "binomial_gcd overflows u128 beyond n = {BINOMIAL_GCD_MAX_N}"
    );
    static TABLE: std::sync::OnceLock<Vec<u128>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        (0..=BINOMIAL_GCD_MAX_N)
            .map(|k| if k < 2 { 0 } else { binomial_gcd_uncached(k) })
            .collect()
    })[n]
}

/// The direct (uncached) computation behind [`binomial_gcd`].
///
/// # Panics
///
/// Same contract as [`binomial_gcd`].
#[must_use]
pub fn binomial_gcd_uncached(n: usize) -> u128 {
    assert!(n >= 2, "binomial_gcd needs n ≥ 2");
    assert!(
        n <= BINOMIAL_GCD_MAX_N,
        "binomial_gcd overflows u128 beyond n = {BINOMIAL_GCD_MAX_N}"
    );
    let mut g: u128 = 0;
    let mut c: u128 = 1; // C(n, 0)
    for i in 1..=n / 2 {
        // C(n,i) = C(n,i−1)·(n−i+1)/i, always divisible — but the naive
        // multiply-then-divide overflows u128 near n = 130, so cancel the
        // denominator into both factors first (c·num/den stays ≤ C(n,⌊n/2⌋)).
        let num = n as u128 - i as u128 + 1;
        let den = i as u128;
        let g1 = gcd(c, den);
        let g2 = gcd(num, den / g1);
        debug_assert_eq!(den / g1 / g2, 1, "binomial recurrence must divide");
        c = (c / g1) * (num / g2);
        g = gcd(g, c);
        if g == 1 {
            break;
        }
    }
    g
}

/// Whether the set `{C(n,i)}` is **not** prime (gcd > 1) — the hypothesis
/// of Theorem 10 under which `⟨n,m,1,u⟩`-GSB is not wait-free solvable.
#[must_use]
pub fn binomials_not_prime(n: usize) -> bool {
    binomial_gcd(n) > 1
}

/// Iterative Euclid, shared with the kernel-counting helpers.
pub(crate) fn gcd(mut a: u128, mut b: u128) -> u128 {
    // Iterative Euclid: the recursive form recursed once per quotient
    // step with no depth bound.
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Whether `n` is a prime power `p^k`, `k ≥ 1`. Used to cross-check
/// [`binomial_gcd`] against the classical characterization.
#[must_use]
pub fn is_prime_power(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut x = n;
    let mut d = 2usize;
    while d * d <= x {
        if x.is_multiple_of(d) {
            while x.is_multiple_of(d) {
                x /= d;
            }
            return x == 1;
        }
        d += 1;
    }
    // x is prime.
    true
}

impl SymmetricGsb {
    /// **Theorem 9**: whether the task is solvable with no communication.
    /// For `m = 1` every feasible task qualifies; for `m > 1` the
    /// characterization is `ℓ = 0 ∧ ⌈(2n−1)/m⌉ ≤ u`.
    #[must_use]
    pub fn no_communication_solvable(&self) -> bool {
        if !self.is_feasible() {
            return false;
        }
        if self.m() == 1 {
            return true;
        }
        self.l() == 0 && (2 * self.n() - 1).div_ceil(self.m()) <= self.u()
    }

    /// The witness decision function of Theorem 9's proof: a partition of
    /// the identity space `[1..2n−1]` into `m` groups of size
    /// `⌈(2n−1)/m⌉` or `⌊(2n−1)/m⌋`; a process with identity `id` decides
    /// `witness[id − 1]`.
    ///
    /// Returns `None` when the task is not solvable without communication.
    #[must_use]
    pub fn no_communication_witness(&self) -> Option<Vec<usize>> {
        if !self.no_communication_solvable() {
            return None;
        }
        let ids = 2 * self.n() - 1;
        let m = self.m();
        // Deterministic balanced partition: identity id ∈ [1..2n−1] maps to
        // ⌈id·m/(2n−1)⌉, giving groups within one of each other in size.
        Some((1..=ids).map(|id| (id * m).div_ceil(ids)).collect())
    }

    /// Wait-free solvability classification per the paper's Section 5
    /// results (see module docs for the rule-by-rule provenance).
    #[must_use]
    pub fn classify(&self) -> Classification {
        classify_symmetric(self)
    }
}

fn classify_symmetric(t: &SymmetricGsb) -> Classification {
    if !t.is_feasible() {
        return Classification {
            solvability: Solvability::Infeasible,
            justification: "Lemma 2: m·ℓ ≤ n ≤ m·u fails".into(),
        };
    }
    if t.no_communication_solvable() {
        return Classification {
            solvability: Solvability::SolvableWithoutCommunication,
            justification: if t.m() == 1 {
                "single output value".into()
            } else {
                "Theorem 9: ℓ = 0 and ⌈(2n−1)/m⌉ ≤ u".into()
            },
        };
    }
    let n = t.n();
    if n == 1 {
        // One process, feasible ⇒ it can decide any value v with ℓ ≤ 1 ≤ u.
        return Classification {
            solvability: Solvability::SolvableWithoutCommunication,
            justification: "single process decides a value with ℓ ≤ 1 ≤ u_v".into(),
        };
    }
    // Solvability is a property of the output set, so classify the
    // canonical representative (Theorem 7): synonyms such as ⟨4,2,0,2⟩
    // and ⟨4,2,2,2⟩ must — and now do — receive the same verdict.
    let canonical = t
        .canonical()
        .expect("feasible tasks always have a canonical form");
    let mut classification = classify_canonical(&canonical);
    if canonical != *t {
        use std::fmt::Write as _;
        let _ = write!(classification.justification, "; via canonical {canonical}");
    }
    classification
}

/// Branch logic of the classifier, on a canonical representative.
fn classify_canonical(t: &SymmetricGsb) -> Classification {
    let n = t.n();
    // Perfect renaming and its synonyms (e.g. n-renaming ⟨n,n,0,1⟩).
    let perfect =
        SymmetricGsb::perfect_renaming(n).expect("n ≥ 1 makes perfect renaming well-formed");
    if *t == perfect {
        return Classification {
            solvability: Solvability::NotWaitFreeSolvable,
            justification: "Corollary 5: perfect renaming is not wait-free solvable".into(),
        };
    }
    let gcd_not_prime = binomials_not_prime(n);
    if t.l() >= 1 && t.m() > 1 && gcd_not_prime {
        let base = "Theorem 10: {C(n,i)} not prime ⇒ ⟨n,m,1,u⟩ unsolvable";
        let justification = if t.l() == 1 {
            base.to_string()
        } else {
            format!("{base}; ℓ ≥ 1 tasks have outputs ⊆ ⟨n,m,1,u⟩'s (Lemma 5)")
        };
        return Classification {
            solvability: Solvability::NotWaitFreeSolvable,
            justification,
        };
    }
    // WSB and its synonyms: ⟨n,2,1,·⟩ always collapses to the WSB class.
    if let Ok(wsb) = SymmetricGsb::wsb(n) {
        let wsb_canonical = wsb.canonical().expect("WSB is feasible for every n ≥ 2");
        if *t == wsb_canonical {
            return if gcd_not_prime {
                Classification {
                    solvability: Solvability::NotWaitFreeSolvable,
                    justification:
                        "Theorem 10 via WSB ≡ (2n−2)-renaming ([29]) and [17]'s lower bound".into(),
                }
            } else {
                Classification {
                    solvability: Solvability::WaitFreeSolvable,
                    justification:
                        "WSB ≡ (2n−2)-renaming ([29]); solvable for exceptional n ([17], gcd = 1)"
                            .into(),
                }
            };
        }
    }
    // Renaming tasks ⟨n, m, 0, 1⟩ below the trivial 2n−1 bound.
    if t.l() == 0 && t.u() == 1 {
        let m = t.m();
        if m >= 2 * n - 1 {
            unreachable!("covered by Theorem 9");
        }
        if m == 2 * n - 2 {
            return if gcd_not_prime {
                Classification {
                    solvability: Solvability::NotWaitFreeSolvable,
                    justification: "[17]: (2n−2)-renaming unsolvable when {C(n,i)} not prime"
                        .into(),
                }
            } else {
                Classification {
                    solvability: Solvability::WaitFreeSolvable,
                    justification: "[17]: (2n−2)-renaming solvable for exceptional n (gcd = 1)"
                        .into(),
                }
            };
        }
        if gcd_not_prime {
            // m-renaming with m ≤ 2n−2 solves (2n−2)-renaming.
            return Classification {
                solvability: Solvability::NotWaitFreeSolvable,
                justification:
                    "m ≤ 2n−2 renaming solves (2n−2)-renaming, unsolvable by [17] (gcd > 1)".into(),
            };
        }
        return Classification {
            solvability: Solvability::Open,
            justification: format!(
                "renaming with n ≤ m = {m} < 2n−2 names and gcd = 1: not settled by the paper"
            ),
        };
    }
    Classification {
        solvability: Solvability::Open,
        justification: "no paper result applies; see §7 open problems".into(),
    }
}

impl GsbSpec {
    /// Generalization of Theorem 9 to asymmetric tasks: the task is
    /// solvable with no communication iff the identity space `[1..2n−1]`
    /// can be partitioned into groups `G_1 … G_m` (a process with identity
    /// in `G_v` decides `v`) such that **every** adversarial choice of `n`
    /// identities yields legal counts. Group `v` of size `g_v` can
    /// contribute between `max(0, g_v − (n−1))` and `min(g_v, n)` deciders,
    /// so the condition is an interval-feasibility problem:
    /// `Σ lo_v ≤ 2n−1 ≤ Σ hi_v` with
    /// `lo_v = n−1+ℓ_v` if `ℓ_v ≥ 1` else `0`, and
    /// `hi_v = u_v` if `u_v < n` else `2n−1`.
    ///
    /// For symmetric tasks this reduces exactly to Theorem 9 (checked by
    /// tests, alongside brute force on small systems).
    #[must_use]
    pub fn no_communication_solvable(&self) -> bool {
        if !self.is_feasible() {
            return false;
        }
        let n = self.n();
        if n == 1 {
            // One process with one identity… of 2·1−1 = 1 possibilities:
            // it decides some value v with ℓ_w = 0 for all w ≠ v.
            return (1..=self.m()).any(|v| {
                self.upper(v) >= 1 && (1..=self.m()).all(|w| w == v || self.lower(w) == 0)
            });
        }
        let ids = 2 * n - 1;
        let mut lo_sum = 0usize;
        let mut hi_sum = 0usize;
        for v in 1..=self.m() {
            let lo = if self.lower(v) >= 1 {
                n - 1 + self.lower(v)
            } else {
                0
            };
            let hi = if self.upper(v) < n {
                self.upper(v)
            } else {
                ids
            };
            if lo > hi {
                return false;
            }
            lo_sum += lo;
            hi_sum = hi_sum.saturating_add(hi);
        }
        lo_sum <= ids && ids <= hi_sum
    }

    /// A witness decision map for
    /// [`GsbSpec::no_communication_solvable`]: entry `id − 1` is the value
    /// decided by a process holding identity `id ∈ [1..2n−1]`. Returns
    /// `None` when no such map exists.
    #[must_use]
    pub fn no_communication_witness(&self) -> Option<Vec<usize>> {
        if !self.no_communication_solvable() {
            return None;
        }
        let n = self.n();
        let ids = 2 * n - 1;
        let m = self.m();
        if n == 1 {
            let v = (1..=m)
                .find(|&v| self.upper(v) >= 1 && (1..=m).all(|w| w == v || self.lower(w) == 0))?;
            return Some(vec![v]);
        }
        // Start every group at its lower requirement, then distribute the
        // remaining identities up to the upper limits.
        let lo: Vec<usize> = (1..=m)
            .map(|v| {
                if self.lower(v) >= 1 {
                    n - 1 + self.lower(v)
                } else {
                    0
                }
            })
            .collect();
        let hi: Vec<usize> = (1..=m)
            .map(|v| {
                if self.upper(v) < n {
                    self.upper(v)
                } else {
                    ids
                }
            })
            .collect();
        let mut sizes = lo.clone();
        let mut remaining = ids - sizes.iter().sum::<usize>();
        for v in 0..m {
            let slack = hi[v] - sizes[v];
            let take = slack.min(remaining);
            sizes[v] += take;
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0);
        let mut map = Vec::with_capacity(ids);
        for (v, &size) in sizes.iter().enumerate() {
            map.extend(std::iter::repeat_n(v + 1, size));
        }
        Some(map)
    }

    /// Brute-force validator for the no-communication characterizations:
    /// exhaustively searches all `m^(2n−1)` decision maps and all
    /// `C(2n−1, n)` adversarial identity sets. Exponential — intended for
    /// `n ≤ 4` in tests only.
    #[must_use]
    pub fn no_communication_brute_force(&self) -> bool {
        let n = self.n();
        let ids = 2 * n - 1;
        let m = self.m();
        let mut map = vec![1usize; ids];
        loop {
            if self.map_beats_all_subsets(&map) {
                return true;
            }
            // Next map in lexicographic order.
            let mut i = 0;
            loop {
                if i == ids {
                    return false;
                }
                if map[i] < m {
                    map[i] += 1;
                    break;
                }
                map[i] = 1;
                i += 1;
            }
        }
    }

    /// Whether the decision map `map` (identity `id` decides
    /// `map[id − 1]`) solves the task against every `n`-subset of
    /// identities.
    #[must_use]
    pub fn map_beats_all_subsets(&self, map: &[usize]) -> bool {
        let n = self.n();
        let ids = map.len();
        debug_assert_eq!(ids, 2 * n - 1);
        let m = self.m();
        // Iterate over all n-subsets of [0..ids).
        let mut subset: Vec<usize> = (0..n).collect();
        loop {
            let mut counts = vec![0usize; m];
            let mut ok = true;
            for &i in &subset {
                let v = map[i];
                if v == 0 || v > m {
                    ok = false;
                    break;
                }
                counts[v - 1] += 1;
            }
            if ok {
                ok = (1..=m).all(|v| {
                    let c = counts[v - 1];
                    self.lower(v) <= c && c <= self.upper(v)
                });
            }
            if !ok {
                return false;
            }
            if !crate::counting::next_index_subset(&mut subset, ids) {
                return true;
            }
        }
    }

    /// Solvability classification; for symmetric specs this delegates to
    /// [`SymmetricGsb::classify`], and it recognizes election (Theorem 11).
    #[must_use]
    pub fn classify(&self) -> Classification {
        if let Some(sym) = self.as_symmetric() {
            return sym.classify();
        }
        if !self.is_feasible() {
            return Classification {
                solvability: Solvability::Infeasible,
                justification: "Lemma 1: Σℓ ≤ n ≤ Σu fails".into(),
            };
        }
        if self.no_communication_solvable() {
            return Classification {
                solvability: Solvability::SolvableWithoutCommunication,
                justification: "interval-partition generalization of Theorem 9".into(),
            };
        }
        if self.n() >= 2 && *self == GsbSpec::election(self.n()).expect("n ≥ 2 checked") {
            return Classification {
                solvability: Solvability::NotWaitFreeSolvable,
                justification: "Theorem 11: election is not wait-free solvable".into(),
            };
        }
        Classification {
            solvability: Solvability::Open,
            justification: "asymmetric task outside the paper's settled results".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(n: usize, m: usize, l: usize, u: usize) -> SymmetricGsb {
        SymmetricGsb::new(n, m, l, u).unwrap()
    }

    #[test]
    fn binomial_gcd_small_values() {
        // n:            2  3  4  5  6  7  8  9  10 11 12
        let expected = [2, 3, 2, 5, 1, 7, 2, 3, 1, 11, 1];
        for (i, &g) in expected.iter().enumerate() {
            assert_eq!(binomial_gcd(i + 2), g, "n = {}", i + 2);
        }
    }

    #[test]
    fn binomial_gcd_matches_prime_power_characterization() {
        for n in 2..=100 {
            assert_eq!(
                binomial_gcd(n) > 1,
                is_prime_power(n),
                "gcd characterization fails at n = {n}"
            );
        }
    }

    #[test]
    fn theorem_9_characterization_examples() {
        // (2n−1)-renaming: solvable with no communication.
        assert!(SymmetricGsb::loose_renaming(4)
            .unwrap()
            .no_communication_solvable());
        // WSB: not (Corollary 3).
        assert!(!SymmetricGsb::wsb(4).unwrap().no_communication_solvable());
        // Homonymous renaming (Corollary 2).
        for n in 2..=8 {
            for x in 1..=n {
                assert!(
                    SymmetricGsb::homonymous_renaming(n, x)
                        .unwrap()
                        .no_communication_solvable(),
                    "n={n} x={x}"
                );
            }
        }
        // Perfect renaming: certainly not.
        assert!(!SymmetricGsb::perfect_renaming(4)
            .unwrap()
            .no_communication_solvable());
    }

    #[test]
    fn theorem_9_matches_brute_force_small() {
        // Exhaustive cross-validation for n ≤ 3, every (m, ℓ, u).
        for n in 2..=3usize {
            for m in 1..=(2 * n - 1) {
                for l in 0..=n {
                    for u in l..=n {
                        let Ok(t) = SymmetricGsb::new(n, m, l, u) else {
                            continue;
                        };
                        let spec = t.to_spec();
                        let closed = t.no_communication_solvable();
                        let brute = spec.is_feasible() && spec.no_communication_brute_force();
                        assert_eq!(closed, brute, "mismatch for {t}");
                        // The asymmetric generalization must agree too.
                        assert_eq!(spec.no_communication_solvable(), closed, "{t}");
                    }
                }
            }
        }
    }

    #[test]
    fn witnesses_actually_win() {
        for n in 2..=5usize {
            for m in 1..=(2 * n - 1) {
                for u in 1..=n {
                    let Ok(t) = SymmetricGsb::new(n, m, 0, u) else {
                        continue;
                    };
                    if let Some(w) = t.no_communication_witness() {
                        assert_eq!(w.len(), 2 * n - 1);
                        assert!(
                            t.to_spec().map_beats_all_subsets(&w),
                            "witness fails for {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn asymmetric_witnesses_win() {
        let spec = GsbSpec::committees(4, &[(0, 2), (0, 2), (0, 4)]).unwrap();
        if let Some(w) = spec.no_communication_witness() {
            assert!(spec.map_beats_all_subsets(&w));
        }
        // And election has none.
        assert_eq!(
            GsbSpec::election(4).unwrap().no_communication_witness(),
            None
        );
    }

    #[test]
    fn asymmetric_generalization_matches_brute_force() {
        // All asymmetric specs with n = 2, m = 2 and n = 3, m = 2.
        for n in 2..=3usize {
            for l1 in 0..=n {
                for u1 in l1..=n {
                    for l2 in 0..=n {
                        for u2 in l2..=n {
                            let Ok(spec) = GsbSpec::new(n, vec![l1, l2], vec![u1, u2]) else {
                                continue;
                            };
                            let closed = spec.no_communication_solvable();
                            let brute = spec.is_feasible() && spec.no_communication_brute_force();
                            assert_eq!(closed, brute, "mismatch for {spec}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn classify_zoo() {
        use Solvability::*;
        // Trivial renaming.
        assert_eq!(
            SymmetricGsb::loose_renaming(5)
                .unwrap()
                .classify()
                .solvability,
            SolvableWithoutCommunication
        );
        // Perfect renaming (Corollary 5) — and its synonym n-renaming.
        assert_eq!(
            SymmetricGsb::perfect_renaming(5)
                .unwrap()
                .classify()
                .solvability,
            NotWaitFreeSolvable
        );
        assert_eq!(
            SymmetricGsb::renaming(5, 5).unwrap().classify().solvability,
            NotWaitFreeSolvable
        );
        // WSB: unsolvable at prime powers, solvable at n = 6, 10, 12.
        for n in [2, 3, 4, 5, 7, 8, 9, 11, 16] {
            assert_eq!(
                SymmetricGsb::wsb(n).unwrap().classify().solvability,
                NotWaitFreeSolvable,
                "WSB n = {n}"
            );
        }
        for n in [6, 10, 12, 14, 15, 18, 20] {
            assert_eq!(
                SymmetricGsb::wsb(n).unwrap().classify().solvability,
                WaitFreeSolvable,
                "WSB n = {n}"
            );
        }
        // (2n−2)-renaming mirrors WSB (they are equivalent, [29]).
        assert_eq!(
            SymmetricGsb::renaming(6, 10)
                .unwrap()
                .classify()
                .solvability,
            WaitFreeSolvable
        );
        assert_eq!(
            SymmetricGsb::renaming(4, 6).unwrap().classify().solvability,
            NotWaitFreeSolvable
        );
        // Election (Theorem 11).
        assert_eq!(
            GsbSpec::election(4).unwrap().classify().solvability,
            NotWaitFreeSolvable
        );
        // k-slot with gcd > 1 (Theorem 10).
        assert_eq!(
            SymmetricGsb::slot(4, 3).unwrap().classify().solvability,
            NotWaitFreeSolvable
        );
        // k-slot, k ≥ 3, exceptional n: open.
        assert_eq!(
            SymmetricGsb::slot(6, 4).unwrap().classify().solvability,
            Open
        );
        // Infeasible.
        assert_eq!(task(5, 4, 0, 1).classify().solvability, Infeasible);
    }

    #[test]
    fn classification_is_synonym_invariant() {
        // Regression: ⟨4,2,0,2⟩ is a synonym of the hardest ⟨4,2,2,2⟩
        // (both have the single kernel [2,2]), but the seed classifier
        // branched on the raw ℓ and left the former Open while ruling the
        // latter unsolvable (Theorem 10). Verdicts are properties of the
        // output set, so synonyms must agree.
        let a = task(4, 2, 0, 2);
        let b = task(4, 2, 2, 2);
        assert!(a.is_synonym_of(&b));
        assert_eq!(a.classify().solvability, Solvability::NotWaitFreeSolvable);
        assert_eq!(a.classify().solvability, b.classify().solvability);
        // Sweep: every synonym pair in small families agrees.
        for n in 2..=8usize {
            for m in 1..=n {
                let family = crate::order::feasible_family(n, m).unwrap();
                for x in &family {
                    for y in &family {
                        if x.is_synonym_of(y) {
                            assert_eq!(
                                x.classify().solvability,
                                y.classify().solvability,
                                "synonyms {x} and {y} disagree"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cached_gcd_matches_uncached() {
        for n in 2..=BINOMIAL_GCD_MAX_N {
            assert_eq!(binomial_gcd(n), binomial_gcd_uncached(n), "n = {n}");
        }
    }

    #[test]
    fn theorem_10_generalization_to_l_geq_2() {
        // ⟨8,2,2,6⟩: ℓ = 2 ≥ 1, gcd{C(8,i)} = 2 > 1 ⇒ unsolvable.
        let c = task(8, 2, 2, 6).classify();
        assert_eq!(c.solvability, Solvability::NotWaitFreeSolvable);
        assert!(c.justification.contains("Theorem 10"));
    }

    #[test]
    fn election_vs_wsb_strictness() {
        // Election's outputs are contained in WSB's, so election solves
        // WSB; the converse fails (Theorem 11 + [17] for n = 6).
        let election = GsbSpec::election(6).unwrap();
        let wsb = SymmetricGsb::wsb(6).unwrap().to_spec();
        for o in election.legal_outputs() {
            assert!(wsb.is_legal_output(&o));
        }
        assert_eq!(
            election.classify().solvability,
            Solvability::NotWaitFreeSolvable
        );
        assert_eq!(wsb.classify().solvability, Solvability::WaitFreeSolvable);
    }

    #[test]
    fn single_process_and_single_value() {
        assert_eq!(
            task(1, 1, 1, 1).classify().solvability,
            Solvability::SolvableWithoutCommunication
        );
        assert_eq!(
            task(4, 1, 0, 4).classify().solvability,
            Solvability::SolvableWithoutCommunication
        );
    }

    #[test]
    fn classification_displays() {
        let c = SymmetricGsb::wsb(6).unwrap().classify();
        let shown = c.to_string();
        assert!(shown.contains("wait-free solvable"));
    }

    #[test]
    fn solvability_labels_round_trip() {
        use Solvability::*;
        for s in [
            Infeasible,
            SolvableWithoutCommunication,
            WaitFreeSolvable,
            NotWaitFreeSolvable,
            Open,
        ] {
            assert_eq!(Solvability::from_label(s.label()), Some(s));
            assert_eq!(s.to_string(), s.label());
        }
        assert_eq!(Solvability::from_label("no such verdict"), None);
    }

    #[test]
    fn polarity_helpers() {
        use Solvability::*;
        assert!(WaitFreeSolvable.is_positive() && !WaitFreeSolvable.is_negative());
        assert!(SolvableWithoutCommunication.is_positive());
        assert!(NotWaitFreeSolvable.is_negative() && !NotWaitFreeSolvable.is_positive());
        assert!(Infeasible.is_negative());
        assert!(!Open.is_positive() && !Open.is_negative());
    }
}
