//! Output vectors of decision tasks.

use crate::error::{Error, Result};

/// An `n`-dimensional decision vector: entry `i` is the value decided by the
/// process with index `i` (values are `1`-based, in `[1..m]`).
///
/// `OutputVector` is a thin, validated wrapper — legality with respect to a
/// particular task is checked by
/// [`GsbSpec::is_legal_output`](crate::GsbSpec::is_legal_output).
///
/// # Examples
///
/// ```
/// use gsb_core::{OutputVector, SymmetricGsb};
///
/// let wsb = SymmetricGsb::wsb(3)?;
/// let o = OutputVector::new(vec![1, 2, 2]);
/// assert!(wsb.is_legal_output(&o));
/// # Ok::<(), gsb_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OutputVector(Vec<usize>);

impl OutputVector {
    /// Wraps a vector of decided values.
    #[must_use]
    pub fn new(values: Vec<usize>) -> Self {
        OutputVector(values)
    }

    /// Builds an output vector from per-process decisions, failing if any
    /// process is still undecided.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] naming the first undecided index.
    pub fn from_decisions(decisions: &[Option<usize>]) -> Result<Self> {
        let mut values = Vec::with_capacity(decisions.len());
        for (i, d) in decisions.iter().enumerate() {
            match d {
                Some(v) => values.push(*v),
                None => {
                    return Err(Error::InvalidSpec {
                        reason: format!("process index {i} has not decided"),
                    })
                }
            }
        }
        Ok(OutputVector(values))
    }

    /// The decided values, indexed by process index.
    #[must_use]
    pub fn values(&self) -> &[usize] {
        &self.0
    }

    /// Dimension `n` of the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty (dimension 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of entries equal to `x` — the paper's `#x(V)` notation.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_core::OutputVector;
    ///
    /// let o = OutputVector::new(vec![2, 1, 2, 2]);
    /// assert_eq!(o.count_of(2), 3);
    /// assert_eq!(o.count_of(7), 0);
    /// ```
    #[must_use]
    pub fn count_of(&self, x: usize) -> usize {
        self.0.iter().filter(|&&v| v == x).count()
    }

    /// Consumes the wrapper, returning the underlying values.
    #[must_use]
    pub fn into_inner(self) -> Vec<usize> {
        self.0
    }
}

impl From<Vec<usize>> for OutputVector {
    fn from(values: Vec<usize>) -> Self {
        OutputVector(values)
    }
}

impl AsRef<[usize]> for OutputVector {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

impl std::fmt::Display for OutputVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_of_matches_paper_notation() {
        let o = OutputVector::new(vec![1, 3, 3, 2, 3]);
        assert_eq!(o.count_of(3), 3);
        assert_eq!(o.count_of(1), 1);
        assert_eq!(o.count_of(4), 0);
    }

    #[test]
    fn from_decisions_requires_all_decided() {
        let ok = OutputVector::from_decisions(&[Some(1), Some(2)]).unwrap();
        assert_eq!(ok.values(), &[1, 2]);
        let err = OutputVector::from_decisions(&[Some(1), None]).unwrap_err();
        assert!(err.to_string().contains("index 1"));
    }

    #[test]
    fn display_and_conversions() {
        let o = OutputVector::from(vec![2, 1]);
        assert_eq!(o.to_string(), "[2, 1]");
        assert_eq!(o.as_ref(), &[2, 1]);
        assert_eq!(o.clone().into_inner(), vec![2, 1]);
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
    }
}
