//! Paper-style kernel tables (Table 1 of the paper, for any `(n, m)`).
//!
//! Table 1 lists every feasible `⟨6, 3, ℓ, u⟩`-GSB task with `u ≤ n` as a
//! row, every kernel vector of `⟨6, 3, 0, 6⟩` as a column, marks with an
//! `x` the kernel vectors belonging to each task, and flags canonical
//! representatives with "yes". [`KernelTable`] regenerates that artifact
//! from first principles for arbitrary `n` and `m`.

use crate::error::Result;
use crate::kernel::KernelVector;
use crate::order::feasible_family;
use crate::spec::SymmetricGsb;

/// One row of a [`KernelTable`]: a feasible task, its canonical flag, and
/// its membership marks against the table's kernel columns.
#[derive(Debug, Clone)]
pub struct KernelTableRow {
    /// The task of this row.
    pub task: SymmetricGsb,
    /// Whether the task is the canonical representative of its synonym
    /// class (the "yes" column of Table 1).
    pub canonical: bool,
    /// `marks[c]` ⇔ the `c`-th kernel column belongs to this task's kernel
    /// set (the `x` marks of Table 1).
    pub marks: Vec<bool>,
}

/// A reproduction of the paper's Table 1 for arbitrary `(n, m)`.
///
/// # Examples
///
/// ```
/// use gsb_core::KernelTable;
///
/// let table = KernelTable::new(6, 3)?;
/// assert_eq!(table.columns().len(), 7);  // 7 kernel vectors
/// assert_eq!(table.rows().len(), 15);    // all feasible (ℓ,u), u ≤ 6
/// let rendered = table.render();
/// assert!(rendered.contains("[4, 2, 0]"));
/// # Ok::<(), gsb_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelTable {
    n: usize,
    m: usize,
    columns: Vec<KernelVector>,
    rows: Vec<KernelTableRow>,
}

impl KernelTable {
    /// Builds the kernel table of the feasible `⟨n, m, −, −⟩` family.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`](crate::Error::InvalidSpec) if `n = 0`
    /// or `m = 0`.
    pub fn new(n: usize, m: usize) -> Result<Self> {
        // Columns: the kernel set of the loosest task ⟨n, m, 0, n⟩, in the
        // paper's descending lexicographic order.
        let loosest = SymmetricGsb::new(n, m, 0, n)?;
        let columns: Vec<KernelVector> = loosest.kernel_set().iter().cloned().collect();
        let mut rows = Vec::new();
        for task in feasible_family(n, m)? {
            let ks = task.kernel_set();
            let marks = columns.iter().map(|k| ks.contains(k)).collect();
            rows.push(KernelTableRow {
                canonical: task.is_canonical()?,
                task,
                marks,
            });
        }
        Ok(KernelTable {
            n,
            m,
            columns,
            rows,
        })
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of output values `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The kernel-vector columns, in descending lexicographic order.
    #[must_use]
    pub fn columns(&self) -> &[KernelVector] {
        &self.columns
    }

    /// The task rows, in the paper's order (descending `u`, ascending `ℓ`).
    #[must_use]
    pub fn rows(&self) -> &[KernelTableRow] {
        &self.rows
    }

    /// Looks up the row for `(ℓ, u)`.
    #[must_use]
    pub fn row(&self, l: usize, u: usize) -> Option<&KernelTableRow> {
        self.rows
            .iter()
            .find(|r| r.task.l() == l && r.task.u() == u)
    }

    /// Renders the table as aligned text in the layout of the paper's
    /// Table 1: one column per kernel vector, `x` marks for membership,
    /// `yes` for canonical rows.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let task_width = format!("⟨{}, {}, {}, {}⟩", self.n, self.m, self.n, self.n).len() + 2;
        let col_width = self
            .columns
            .iter()
            .map(|k| k.to_string().len())
            .max()
            .unwrap_or(4)
            + 2;
        let _ = write!(s, "{:<task_width$}{:<10}", "task", "canonical");
        for k in &self.columns {
            let _ = write!(s, "{:<col_width$}", k.to_string());
        }
        s.push('\n');
        for row in &self.rows {
            let t = &row.task;
            let name = format!("⟨{}, {}, {}, {}⟩", t.n(), t.m(), t.l(), t.u());
            let _ = write!(
                s,
                "{:<task_width$}{:<10}",
                name,
                if row.canonical { "yes" } else { "" }
            );
            for &mark in &row.marks {
                let _ = write!(s, "{:<col_width$}", if mark { "x" } else { "" });
            }
            // Trim trailing spaces for cleanliness.
            while s.ends_with(' ') {
                s.pop();
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1, transcribed: (ℓ, u, canonical, marks over the
    /// 7 columns [6,0,0] [5,1,0] [4,2,0] [4,1,1] [3,3,0] [3,2,1] [2,2,2]).
    const PAPER_TABLE_1: &[(usize, usize, bool, [u8; 7])] = &[
        (0, 6, true, [1, 1, 1, 1, 1, 1, 1]),
        (1, 6, false, [0, 0, 0, 1, 0, 1, 1]),
        (0, 5, true, [0, 1, 1, 1, 1, 1, 1]),
        (1, 5, false, [0, 0, 0, 1, 0, 1, 1]),
        (2, 5, false, [0, 0, 0, 0, 0, 0, 1]),
        (0, 4, true, [0, 0, 1, 1, 1, 1, 1]),
        (1, 4, true, [0, 0, 0, 1, 0, 1, 1]),
        (2, 4, false, [0, 0, 0, 0, 0, 0, 1]),
        (0, 3, true, [0, 0, 0, 0, 1, 1, 1]),
        (1, 3, true, [0, 0, 0, 0, 0, 1, 1]),
        (2, 3, false, [0, 0, 0, 0, 0, 0, 1]),
        (0, 2, false, [0, 0, 0, 0, 0, 0, 1]),
        (1, 2, false, [0, 0, 0, 0, 0, 0, 1]),
        (2, 2, true, [0, 0, 0, 0, 0, 0, 1]),
    ];

    #[test]
    fn reproduces_paper_table_1_exactly() {
        let table = KernelTable::new(6, 3).unwrap();
        // Columns in the paper's order.
        let cols: Vec<String> = table.columns().iter().map(|k| k.to_string()).collect();
        assert_eq!(
            cols,
            [
                "[6, 0, 0]",
                "[5, 1, 0]",
                "[4, 2, 0]",
                "[4, 1, 1]",
                "[3, 3, 0]",
                "[3, 2, 1]",
                "[2, 2, 2]"
            ]
        );
        for &(l, u, canonical, marks) in PAPER_TABLE_1 {
            let row = table
                .row(l, u)
                .unwrap_or_else(|| panic!("missing row ⟨6,3,{l},{u}⟩"));
            assert_eq!(
                row.canonical, canonical,
                "canonical flag mismatch for ⟨6,3,{l},{u}⟩"
            );
            let expected: Vec<bool> = marks.iter().map(|&b| b == 1).collect();
            assert_eq!(row.marks, expected, "marks mismatch for ⟨6,3,{l},{u}⟩");
        }
    }

    #[test]
    fn includes_the_row_the_paper_omits() {
        // ⟨6,3,2,6⟩ is feasible (2 ≤ 6/3 ≤ 6) but absent from the paper's
        // Table 1; it is a synonym of ⟨6,3,2,2⟩ with the single kernel
        // [2,2,2]. Our generator includes it — see EXPERIMENTS.md E1.
        let table = KernelTable::new(6, 3).unwrap();
        assert_eq!(table.rows().len(), PAPER_TABLE_1.len() + 1);
        let extra = table.row(2, 6).unwrap();
        assert!(!extra.canonical);
        assert_eq!(
            extra.marks,
            [false, false, false, false, false, false, true]
        );
    }

    #[test]
    fn canonical_rows_count_matches_classes() {
        use crate::order::TaskOrder;
        for (n, m) in [(4, 2), (6, 3), (8, 4), (7, 3)] {
            let table = KernelTable::new(n, m).unwrap();
            let canonical_rows = table.rows().iter().filter(|r| r.canonical).count();
            let classes = TaskOrder::new(n, m).unwrap().classes().len();
            assert_eq!(canonical_rows, classes, "n={n} m={m}");
        }
    }

    #[test]
    fn render_has_all_rows_and_marks() {
        let table = KernelTable::new(6, 3).unwrap();
        let text = table.render();
        assert_eq!(text.lines().count(), 1 + table.rows().len());
        // Total x marks equals total kernel-set sizes.
        let marks: usize = text.matches(" x").count() + text.matches("x ").count();
        let _ = marks; // alignment-dependent; check via rows instead:
        let total_marks: usize = table
            .rows()
            .iter()
            .map(|r| r.marks.iter().filter(|&&b| b).count())
            .sum();
        let total_kernels: usize = table.rows().iter().map(|r| r.task.kernel_set().len()).sum();
        assert_eq!(total_marks, total_kernels);
        assert!(text.contains("yes"));
    }

    #[test]
    fn small_tables() {
        // n = 2, m = 2: feasible (ℓ,u): u ∈ {1, 2}, ℓ ∈ {0, 1}.
        let table = KernelTable::new(2, 2).unwrap();
        assert_eq!(
            table
                .columns()
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>(),
            ["[2, 0]", "[1, 1]"]
        );
        // Rows: (0,2), (1,2), (0,1), (1,1).
        assert_eq!(table.rows().len(), 4);
        // Perfect renaming row ⟨2,2,1,1⟩ has only [1,1].
        let pr = table.row(1, 1).unwrap();
        assert_eq!(pr.marks, [false, true]);
    }
}
