//! Structure theory for **asymmetric** GSB tasks — an extension beyond
//! the paper.
//!
//! Section 4 develops synonyms, anchoring and canonical representatives
//! for *symmetric* tasks only. The same questions make sense for
//! `⟨n, m, ℓ⃗, u⃗⟩-GSB`: different bound vectors can carve out the same
//! output set. This module provides:
//!
//! * [`GsbSpec::counting_set`] — the set of legal counting vectors, the
//!   asymmetric analogue of the kernel set (a complete invariant of the
//!   output set);
//! * [`GsbSpec::is_same_task`] / [`GsbSpec::is_subtask_of`] — synonym and
//!   containment tests via counting sets;
//! * [`GsbSpec::tighten`] — the asymmetric analogue of Theorem 7's fixed
//!   point: per-value interval tightening
//!   `ℓ_v ← max(ℓ_v, n − Σ_{w≠v} u_w)`,
//!   `u_v ← min(u_v, n − Σ_{w≠v} ℓ_w)`
//!   iterated to a fixed point. The result denotes the same task (each
//!   step only removes bound slack that no legal output can use) and is
//!   the canonical representative of its synonym class: on any tightened
//!   pair of synonyms the bounds coincide (cross-validated exhaustively
//!   in tests for small `n`).

use std::collections::BTreeSet;

use crate::counting::CountingVector;
use crate::spec::GsbSpec;

impl GsbSpec {
    /// The set of legal counting vectors — exactly the images `#v(O)` of
    /// the task's output vectors (Definition 3 generalized). Two specs
    /// with equal `n`, `m` describe the same task iff these sets match.
    ///
    /// Enumerated by bounded composition search: size is polynomial for
    /// fixed `m` but grows quickly; intended for moderate parameters.
    #[must_use]
    pub fn counting_set(&self) -> BTreeSet<CountingVector> {
        let mut out = BTreeSet::new();
        let m = self.m();
        let mut counts = vec![0usize; m];
        self.counting_rec(1, self.n(), &mut counts, &mut out);
        out
    }

    fn counting_rec(
        &self,
        v: usize,
        remaining: usize,
        counts: &mut Vec<usize>,
        out: &mut BTreeSet<CountingVector>,
    ) {
        let m = self.m();
        if v > m {
            if remaining == 0 {
                out.insert(CountingVector::new(counts.clone()));
            }
            return;
        }
        // Remaining values must absorb `remaining` decisions within their
        // bounds.
        let min_rest: usize = (v + 1..=m).map(|w| self.lower(w)).sum();
        let max_rest: usize = (v + 1..=m).map(|w| self.upper(w)).sum();
        let lo = self.lower(v).max(remaining.saturating_sub(max_rest));
        let hi = self.upper(v).min(remaining.saturating_sub(min_rest));
        for c in lo..=hi.min(remaining) {
            counts[v - 1] = c;
            self.counting_rec(v + 1, remaining - c, counts, out);
        }
        counts[v - 1] = 0;
    }

    /// Whether `self` and `other` denote the same task (equal `n`, `m`
    /// and counting sets) — the asymmetric synonym test.
    #[must_use]
    pub fn is_same_task(&self, other: &GsbSpec) -> bool {
        self.n() == other.n() && self.m() == other.m() && self.tighten() == other.tighten()
    }

    /// Output-set containment `S(self) ⊆ S(other)` for equal `n`, `m`,
    /// via counting sets.
    #[must_use]
    pub fn is_subtask_of(&self, other: &GsbSpec) -> bool {
        if self.n() != other.n() || self.m() != other.m() {
            return false;
        }
        self.counting_set().is_subset(&other.counting_set())
    }

    /// One tightening step: clamp every bound to what the other values'
    /// bounds leave reachable. Returns `self` unchanged when infeasible.
    #[must_use]
    pub fn tighten_step(&self) -> GsbSpec {
        if !self.is_feasible() {
            return self.clone();
        }
        let n = self.n() as i64;
        let m = self.m();
        let total_l: i64 = self.lower_bounds().iter().map(|&x| x as i64).sum();
        let total_u: i64 = self.upper_bounds().iter().map(|&x| x as i64).sum();
        let mut lower = Vec::with_capacity(m);
        let mut upper = Vec::with_capacity(m);
        for v in 1..=m {
            let l_v = self.lower(v) as i64;
            let u_v = self.upper(v) as i64;
            let rest_u = total_u - u_v;
            let rest_l = total_l - l_v;
            let new_l = l_v.max(n - rest_u).clamp(0, n);
            let new_u = u_v.min(n - rest_l).clamp(new_l, n);
            lower.push(new_l as usize);
            upper.push(new_u as usize);
        }
        GsbSpec::new(self.n(), lower, upper)
            .expect("tightening a feasible spec keeps it well-formed")
    }

    /// The canonical representative of this task: the fixed point of
    /// [`GsbSpec::tighten_step`]. Denotes the same task, with every bound
    /// attained by some legal output (the asymmetric analogue of the
    /// paper's Theorem 7).
    ///
    /// Infeasible specs are returned unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_core::GsbSpec;
    ///
    /// // "At most 2 deciders of value 1" is vacuous slack when the other
    /// // two values can absorb at most 1 each out of 4 processes.
    /// let loose = GsbSpec::new(4, vec![0, 0, 0], vec![4, 1, 1])?;
    /// let tight = loose.tighten();
    /// assert_eq!(tight.lower_bounds(), &[2, 0, 0]); // value 1 needs ≥ 2
    /// assert_eq!(tight.upper_bounds(), &[4, 1, 1]);
    /// # Ok::<(), gsb_core::Error>(())
    /// ```
    #[must_use]
    pub fn tighten(&self) -> GsbSpec {
        let mut current = self.clone();
        loop {
            let next = current.tighten_step();
            if next == current {
                return current;
            }
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SymmetricGsb;

    #[test]
    fn counting_set_matches_output_enumeration() {
        let specs = vec![
            GsbSpec::election(4).unwrap(),
            GsbSpec::committees(5, &[(1, 2), (2, 3), (0, 1)]).unwrap(),
            SymmetricGsb::wsb(4).unwrap().to_spec(),
            SymmetricGsb::slot(5, 3).unwrap().to_spec(),
        ];
        for spec in specs {
            let from_outputs: BTreeSet<CountingVector> = spec
                .legal_outputs()
                .iter()
                .map(|o| CountingVector::of_output(o, spec.m()))
                .collect();
            assert_eq!(spec.counting_set(), from_outputs, "{spec}");
        }
    }

    #[test]
    fn tighten_preserves_the_task() {
        // Exhaustive for n = 3, m = 2: the tightened spec has the same
        // counting set (hence the same outputs).
        for l1 in 0..=3usize {
            for u1 in l1..=3 {
                for l2 in 0..=3usize {
                    for u2 in l2..=3 {
                        let Ok(spec) = GsbSpec::new(3, vec![l1, l2], vec![u1, u2]) else {
                            continue;
                        };
                        let tight = spec.tighten();
                        assert_eq!(
                            spec.counting_set(),
                            tight.counting_set(),
                            "{spec} vs {tight}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tighten_is_canonical_for_synonym_classes() {
        // Exhaustive n = 3, m = 2: two specs with the same counting set
        // tighten to identical bounds.
        let mut by_counting: std::collections::HashMap<String, GsbSpec> =
            std::collections::HashMap::new();
        for l1 in 0..=3usize {
            for u1 in l1..=3 {
                for l2 in 0..=3usize {
                    for u2 in l2..=3 {
                        let Ok(spec) = GsbSpec::new(3, vec![l1, l2], vec![u1, u2]) else {
                            continue;
                        };
                        if !spec.is_feasible() {
                            continue;
                        }
                        let key = format!("{:?}", spec.counting_set());
                        let tight = spec.tighten();
                        if let Some(previous) = by_counting.get(&key) {
                            assert_eq!(
                                previous.tighten(),
                                tight,
                                "synonyms {previous} and {spec} disagree after tightening"
                            );
                        } else {
                            by_counting.insert(key, spec);
                        }
                    }
                }
            }
        }
        assert!(by_counting.len() > 5, "several distinct tasks covered");
    }

    #[test]
    fn tighten_agrees_with_symmetric_canonical_on_symmetric_specs() {
        // On symmetric inputs, tightening refines at least as far as the
        // paper's canonical map: the symmetric canonical parameters
        // reappear on the diagonal of the tightened bounds whenever the
        // tightened spec stays symmetric.
        for n in 2..=7usize {
            for m in 1..=n {
                for l in 0..=n / m {
                    for u in l.max(n.div_ceil(m))..=n {
                        let t = SymmetricGsb::new(n, m, l, u).unwrap();
                        let tight = t.to_spec().tighten();
                        if let Some(sym) = tight.as_symmetric() {
                            let canonical = t.canonical().unwrap();
                            assert!(
                                sym.is_synonym_of(&canonical),
                                "{t}: tightened {sym} vs canonical {canonical}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn election_is_already_tight() {
        let e = GsbSpec::election(5).unwrap();
        assert_eq!(e.tighten(), e);
    }

    #[test]
    fn is_same_task_and_subtask() {
        // ⟨4, [0,0], [4,4]⟩ and ⟨4, [0,0], [4,4]⟩ trivially; and a slack
        // variant with an unattainable upper bound.
        let a = GsbSpec::new(4, vec![1, 1], vec![3, 3]).unwrap();
        let b = GsbSpec::new(4, vec![1, 1], vec![4, 3]).unwrap(); // u₁=4 unattainable
        assert!(a.is_same_task(&b));
        assert!(a.is_subtask_of(&b) && b.is_subtask_of(&a));
        let c = GsbSpec::new(4, vec![2, 1], vec![3, 2]).unwrap();
        assert!(c.is_subtask_of(&a));
        assert!(!a.is_subtask_of(&c));
        assert!(!a.is_same_task(&c));
    }

    #[test]
    fn infeasible_specs_tighten_to_themselves() {
        let bad = GsbSpec::new(4, vec![3, 3], vec![3, 3]).unwrap();
        assert!(!bad.is_feasible());
        assert_eq!(bad.tighten(), bad);
    }
}
