//! Property-based tests for the oracle and simulator machinery — the
//! load-bearing components of experiments E3/E4.

use gsb_core::{GsbSpec, OutputVector};
use gsb_memory::{partial_decisions_completable, GsbOracle, Oracle, OraclePolicy, Pid};
use proptest::prelude::*;

/// Strategy: a feasible asymmetric GSB spec with n ∈ [1..7], m ∈ [1..4].
fn feasible_spec() -> impl Strategy<Value = GsbSpec> {
    (1usize..=7, 1usize..=4)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0usize..=7, 0usize..=7), m..=m),
            )
        })
        .prop_map(|(n, bounds)| {
            let lower: Vec<usize> = bounds.iter().map(|&(a, b)| a.min(b).min(n)).collect();
            let upper: Vec<usize> = bounds.iter().map(|&(a, b)| a.max(b).min(n)).collect();
            GsbSpec::new(n, lower, upper).expect("well-formed")
        })
        .prop_filter("feasible", GsbSpec::is_feasible)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn oracle_outputs_are_always_legal(spec in feasible_spec(), seed in 0u64..1000) {
        // Whatever the reply policy and invocation order, the completed
        // oracle's replies form a legal output vector.
        for policy in [
            OraclePolicy::FirstFit,
            OraclePolicy::LastFit,
            OraclePolicy::Seeded(seed),
        ] {
            let n = spec.n();
            let mut oracle = GsbOracle::new(spec.clone(), policy).expect("feasible");
            // Invocation order driven by the seed.
            let mut order: Vec<usize> = (0..n).collect();
            let rotation = (seed as usize) % n.max(1);
            order.rotate_left(rotation);
            let mut replies = vec![0usize; n];
            for &i in &order {
                replies[i] = oracle.invoke(Pid::new(i), 0).unwrap() as usize;
            }
            let out = OutputVector::new(replies);
            prop_assert!(spec.is_legal_output(&out), "{spec} {policy:?}: {out}");
        }
    }

    #[test]
    fn oracle_prefixes_stay_completable(spec in feasible_spec(), cut in 0usize..8) {
        // Stopping the oracle after any prefix of invocations leaves a
        // completable partial decision vector — the property crash-runs
        // of oracle-based algorithms rely on.
        let n = spec.n();
        let cut = cut.min(n);
        let mut oracle = GsbOracle::new(spec.clone(), OraclePolicy::LastFit).expect("feasible");
        let mut partial: Vec<Option<usize>> = vec![None; n];
        for (i, slot) in partial.iter_mut().enumerate().take(cut) {
            *slot = Some(oracle.invoke(Pid::new(i), 0).unwrap() as usize);
        }
        prop_assert!(partial_decisions_completable(&spec, &partial));
    }

    #[test]
    fn completability_is_monotone_under_undeciding(
        spec in feasible_spec(),
        seed in 0u64..500,
    ) {
        // Erasing a decision never makes a completable vector
        // incompletable.
        let outputs = spec.legal_outputs();
        prop_assume!(!outputs.is_empty());
        let output = &outputs[(seed as usize) % outputs.len()];
        let n = spec.n();
        let mut partial: Vec<Option<usize>> =
            output.values().iter().map(|&v| Some(v)).collect();
        prop_assert!(partial_decisions_completable(&spec, &partial));
        // Erase positions one at a time in a seed-driven order.
        for step in 0..n {
            let i = ((seed as usize) + step * 7) % n;
            partial[i] = None;
            prop_assert!(
                partial_decisions_completable(&spec, &partial),
                "{spec}: erasing position {i} broke completability"
            );
        }
    }

    #[test]
    fn snapshot_cell_encoding_round_trips(
        data in any::<u64>(),
        seq in any::<u64>(),
        view in proptest::collection::vec(proptest::option::of(any::<u64>()), 0..6),
    ) {
        use gsb_memory::SnapshotCell;
        let cell = SnapshotCell { data, seq, view };
        prop_assert_eq!(SnapshotCell::decode(&cell.encode()), Some(cell));
    }
}
