//! Equivalence of the enumeration engines over a protocol zoo.
//!
//! The memoized symmetry-reduced worklist enumerator must produce the
//! same multiset of decision vectors as the retained naive reference DFS
//! for every protocol in the zoo at `n ∈ {2, 3}` — while visiting
//! strictly fewer nodes on the symmetric (exchangeable) members.

use gsb_memory::{
    enumerate_decisions_memoized, enumerate_decisions_naive, enumerate_schedules,
    enumerate_schedules_reference, Action, Executor, Observation, Protocol, Symmetry,
};
use proptest::prelude::*;

/// Writes, snapshots, decides how many cells it saw non-empty.
/// Exchangeable, fingerprinted.
#[derive(Debug, Clone)]
struct SeenCount;

impl Protocol for SeenCount {
    fn next_action(&mut self, obs: Observation) -> Action {
        match obs {
            Observation::Start => Action::Write(vec![1]),
            Observation::Written => Action::Snapshot,
            Observation::Snapshot(view) => Action::Decide(view.iter().flatten().count()),
            _ => unreachable!(),
        }
    }
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
    fn state_key(&self) -> Option<Vec<u64>> {
        Some(Vec::new())
    }
}

/// Writes once, then snapshots twice; the decision combines both views'
/// censuses, so the machine is genuinely stateful across rounds.
/// Exchangeable, fingerprinted (phase + first census), deeper tree than
/// [`SeenCount`] without an exponential run-count blow-up.
#[derive(Debug, Clone, Default)]
struct TwoRoundCollector {
    first_census: Option<u64>,
}

impl Protocol for TwoRoundCollector {
    fn next_action(&mut self, obs: Observation) -> Action {
        match obs {
            Observation::Start => Action::Write(vec![1]),
            Observation::Written => Action::Snapshot,
            Observation::Snapshot(view) => {
                let census = view.iter().flatten().count() as u64;
                match self.first_census {
                    None => {
                        self.first_census = Some(census);
                        Action::Snapshot
                    }
                    Some(first) => Action::Decide((first + census) as usize % 3 + 1),
                }
            }
            _ => unreachable!(),
        }
    }
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
    fn state_key(&self) -> Option<Vec<u64>> {
        match self.first_census {
            None => Some(vec![0]),
            Some(c) => Some(vec![1, c]),
        }
    }
}

/// Decides 1 when it saw every process, 2 otherwise. Exchangeable, but
/// deliberately *not* fingerprinted — exercises pure orbit pruning.
#[derive(Debug, Clone)]
struct ThresholdVoterNoKey;

impl Protocol for ThresholdVoterNoKey {
    fn next_action(&mut self, obs: Observation) -> Action {
        match obs {
            Observation::Start => Action::Write(vec![1]),
            Observation::Written => Action::Snapshot,
            Observation::Snapshot(view) => {
                let n = view.len();
                let seen = view.iter().flatten().count();
                Action::Decide(if seen == n { 1 } else { 2 })
            }
            _ => unreachable!(),
        }
    }
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
    // Default state_key(): None — opts out of the memo table.
}

/// Writes its identity and decides its rank among the identities it saw.
/// NOT exchangeable (distinct identities); fingerprinted by identity.
#[derive(Debug, Clone)]
struct RankByIdentity {
    id: u64,
}

impl Protocol for RankByIdentity {
    fn next_action(&mut self, obs: Observation) -> Action {
        match obs {
            Observation::Start => Action::Write(vec![self.id]),
            Observation::Written => Action::Snapshot,
            Observation::Snapshot(view) => {
                let mut seen: Vec<u64> = view.iter().flatten().map(|v| v[0]).collect();
                seen.sort_unstable();
                let rank = seen.iter().position(|&x| x == self.id).unwrap();
                Action::Decide(rank + 1)
            }
            _ => unreachable!(),
        }
    }
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
    fn state_key(&self) -> Option<Vec<u64>> {
        Some(vec![self.id])
    }
}

fn uniform_executor<P: Protocol + Clone + 'static>(proto: &P, n: usize) -> Executor {
    let protocols = (0..n)
        .map(|_| Box::new(proto.clone()) as Box<dyn Protocol>)
        .collect();
    Executor::new(protocols, vec![])
}

/// The exchangeable zoo members, by name.
fn exchangeable_zoo(n: usize) -> Vec<(&'static str, Executor)> {
    vec![
        ("seen-count", uniform_executor(&SeenCount, n)),
        (
            "two-round-collector",
            uniform_executor(&TwoRoundCollector::default(), n),
        ),
        (
            "threshold-voter-no-key",
            uniform_executor(&ThresholdVoterNoKey, n),
        ),
    ]
}

const LIMIT: usize = 100_000;

#[test]
fn memoized_matches_naive_on_the_exchangeable_zoo() {
    for n in [2usize, 3] {
        for (name, exec) in exchangeable_zoo(n) {
            let (naive_set, naive_stats) = enumerate_decisions_naive(&exec, LIMIT).unwrap();
            for symmetry in [Symmetry::None, Symmetry::Exchangeable] {
                let (memo_set, stats) =
                    enumerate_decisions_memoized(&exec, LIMIT, symmetry).unwrap();
                assert_eq!(naive_set, memo_set, "{name} n={n} {symmetry:?}");
                assert_eq!(stats.runs, naive_stats.runs, "{name} n={n} {symmetry:?}");
                assert_eq!(stats.max_depth, naive_stats.max_depth, "{name} n={n}");
            }
        }
    }
}

#[test]
fn memoized_visits_strictly_fewer_nodes_on_symmetric_protocols() {
    // The acceptance gate: at n = 3 every symmetric zoo member must show
    // a strict node reduction (and n = 2 comes along for free).
    for n in [2usize, 3] {
        for (name, exec) in exchangeable_zoo(n) {
            let (_, naive_stats) = enumerate_decisions_naive(&exec, LIMIT).unwrap();
            let (_, stats) =
                enumerate_decisions_memoized(&exec, LIMIT, Symmetry::Exchangeable).unwrap();
            assert!(
                stats.nodes < naive_stats.nodes,
                "{name} n={n}: memoized {} nodes vs naive {}",
                stats.nodes,
                naive_stats.nodes
            );
            assert!(
                stats.memo_hits > 0 || stats.orbit_skips > 0,
                "{name} n={n}: no reduction mechanism fired"
            );
        }
    }
}

#[test]
fn orbit_pruning_alone_reduces_nodes_without_fingerprints() {
    // ThresholdVoterNoKey opts out of the memo table; the symmetry
    // reduction must still come from orbit derivation.
    let exec = uniform_executor(&ThresholdVoterNoKey, 3);
    let (_, stats) = enumerate_decisions_memoized(&exec, LIMIT, Symmetry::Exchangeable).unwrap();
    assert_eq!(stats.memo_hits, 0, "no fingerprints, no memo hits");
    assert!(stats.orbit_skips > 0);
    // Under Symmetry::None nothing can be pruned for this protocol.
    let (_, none_stats) = enumerate_decisions_memoized(&exec, LIMIT, Symmetry::None).unwrap();
    let (_, naive_stats) = enumerate_decisions_naive(&exec, LIMIT).unwrap();
    assert_eq!(none_stats.nodes, naive_stats.nodes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rank_protocol_matches_naive_under_plain_state_merging(
        ids in proptest::collection::vec(1u64..=64, 2..=3),
    ) {
        // Identity-seeded protocols are not exchangeable, but the
        // Symmetry::None engine (exact-state merging only) must still
        // reproduce the naive multiset for any identity assignment.
        prop_assume!({
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len() == ids.len()
        });
        let protocols: Vec<Box<dyn Protocol>> = ids
            .iter()
            .map(|&id| Box::new(RankByIdentity { id }) as Box<dyn Protocol>)
            .collect();
        let exec = Executor::new(protocols, vec![]);
        let (naive_set, _) = enumerate_decisions_naive(&exec, LIMIT).unwrap();
        let (memo_set, stats) =
            enumerate_decisions_memoized(&exec, LIMIT, Symmetry::None).unwrap();
        prop_assert_eq!(naive_set, memo_set);
        prop_assert!(stats.orbit_skips == 0);
    }

    #[test]
    fn worklist_and_reference_agree_under_early_abort(abort_after in 1usize..=30) {
        // The explicit-stack worklist must visit runs in the reference
        // order, so aborting after k complete runs yields identical
        // prefixes of the run sequence.
        let exec = uniform_executor(&SeenCount, 3);
        let mut worklist_runs = Vec::new();
        let mut count = 0usize;
        enumerate_schedules(&exec, LIMIT, &mut |_| true, &mut |o| {
            worklist_runs.push(o.decisions.clone());
            count += 1;
            count < abort_after
        })
        .unwrap();
        let mut reference_runs = Vec::new();
        let mut count = 0usize;
        enumerate_schedules_reference(&exec, LIMIT, &mut |_| true, &mut |o| {
            reference_runs.push(o.decisions.clone());
            count += 1;
            count < abort_after
        })
        .unwrap();
        prop_assert_eq!(worklist_runs, reference_runs);
    }
}
