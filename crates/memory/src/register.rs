//! Simulated single-writer multi-reader atomic registers (Section 2.1).
//!
//! The model's shared memory is one array `A[1..n]` of 1WnR atomic
//! registers: only `p_i` writes `A[i]`, anyone reads any entry. The
//! simulator executes one operation per scheduler tick, so operations are
//! trivially atomic; a version log supports the linearizability checks for
//! objects *built from* registers (e.g. the AADGMS snapshot of
//! [`crate::snapshot`]).

use crate::process::Pid;

/// The unit of register content. Full-information protocols serialize
/// their local state into a vector of words.
pub type Word = u64;

/// A register value: a vector of [`Word`]s (registers are unbounded in the
/// model; a `Vec` keeps encodings simple).
pub type Value = Vec<Word>;

/// The shared array `A[1..n]` of single-writer multi-reader registers.
///
/// # Examples
///
/// ```
/// use gsb_memory::{Pid, RegisterArray};
///
/// let mut array = RegisterArray::new(3);
/// array.write(Pid::new(1), vec![42]);
/// assert_eq!(array.read(1), Some(&vec![42]));
/// assert_eq!(array.read(0), None); // never written
/// let snap = array.snapshot();
/// assert_eq!(snap, vec![None, Some(vec![42]), None]);
/// ```
#[derive(Debug, Clone)]
pub struct RegisterArray {
    cells: Vec<Option<Value>>,
    /// Total number of writes so far — a logical clock whose value stamps
    /// the write-event log.
    version: u64,
    /// Write log `(version, pid, value)` used by history checkers.
    log: Vec<(u64, Pid, Value)>,
    /// Whether writes are appended to the log (the enumerator's lean mode
    /// switches this off so forks stop paying O(writes) per clone).
    logging: bool,
}

impl RegisterArray {
    /// Creates an array of `n` registers, all initialized to `⊥` (`None`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        RegisterArray {
            cells: vec![None; n],
            version: 0,
            log: Vec::new(),
            logging: true,
        }
    }

    /// Switches the write log on or off (off = lean enumeration mode;
    /// [`RegisterArray::write_log`] and [`RegisterArray::state_at`] then
    /// only cover the logged prefix).
    pub fn set_logging(&mut self, on: bool) {
        self.logging = on;
    }

    /// Number of registers `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array is empty (zero registers).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically writes `value` into `A[pid]` (the caller's own cell —
    /// single-writer discipline is the executor's responsibility and is
    /// asserted here).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn write(&mut self, pid: Pid, value: Value) {
        let i = pid.index();
        assert!(i < self.cells.len(), "register index {i} out of range");
        self.version += 1;
        if self.logging {
            self.log.push((self.version, pid, value.clone()));
        }
        self.cells[i] = Some(value);
    }

    /// Atomically reads `A[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn read(&self, j: usize) -> Option<&Value> {
        assert!(j < self.cells.len(), "register index {j} out of range");
        self.cells[j].as_ref()
    }

    /// Atomically reads the whole array — the model's `READ` snapshot
    /// primitive (the paper assumes it w.l.o.g.; the
    /// [`crate::snapshot`] module demonstrates its implementability from
    /// single-cell reads).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Option<Value>> {
        self.cells.clone()
    }

    /// Current logical time (number of writes performed).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The write log: `(version, writer, value)` triples in order.
    #[must_use]
    pub fn write_log(&self) -> &[(u64, Pid, Value)] {
        &self.log
    }

    /// Reconstructs the array contents as of logical time `version`
    /// (after the `version`-th write). Used by linearizability checks.
    #[must_use]
    pub fn state_at(&self, version: u64) -> Vec<Option<Value>> {
        let mut cells = vec![None; self.cells.len()];
        for (v, pid, value) in &self.log {
            if *v > version {
                break;
            }
            cells[pid.index()] = Some(value.clone());
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut a = RegisterArray::new(2);
        assert_eq!(a.read(0), None);
        a.write(Pid::new(0), vec![7, 8]);
        assert_eq!(a.read(0), Some(&vec![7, 8]));
        a.write(Pid::new(0), vec![9]);
        assert_eq!(a.read(0), Some(&vec![9]));
        assert_eq!(a.version(), 2);
    }

    #[test]
    fn state_at_reconstructs_history() {
        let mut a = RegisterArray::new(3);
        a.write(Pid::new(0), vec![1]); // version 1
        a.write(Pid::new(1), vec![2]); // version 2
        a.write(Pid::new(0), vec![3]); // version 3
        assert_eq!(a.state_at(0), vec![None, None, None]);
        assert_eq!(a.state_at(1), vec![Some(vec![1]), None, None]);
        assert_eq!(a.state_at(2), vec![Some(vec![1]), Some(vec![2]), None]);
        assert_eq!(a.state_at(3), vec![Some(vec![3]), Some(vec![2]), None]);
        assert_eq!(a.snapshot(), a.state_at(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        let a = RegisterArray::new(1);
        let _ = a.read(1);
    }

    #[test]
    fn write_log_records_everything() {
        let mut a = RegisterArray::new(2);
        a.write(Pid::new(1), vec![5]);
        a.write(Pid::new(0), vec![6]);
        let log = a.write_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (1, Pid::new(1), vec![5]));
        assert_eq!(log[1], (2, Pid::new(0), vec![6]));
    }
}
