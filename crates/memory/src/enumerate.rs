//! Exhaustive schedule enumeration for small systems.
//!
//! Wait-free correctness quantifies over *all* runs. For small `n` and
//! bounded algorithms the simulator can enumerate every schedule exactly:
//! a depth-first search that forks the executor at each step over every
//! active process. Crash-containing runs need no separate enumeration for
//! task validity — every prefix of a crash-free schedule is reached by the
//! DFS, and [`partial_decisions_completable`](crate::sim::partial_decisions_completable)
//! is checked at every node (the decided values of any prefix must remain
//! completable, which is exactly the validity requirement of Definition 1
//! restated prefix-wise).

use crate::error::Result;
use crate::process::Pid;
use crate::sim::{Executor, RunOutcome};

/// Statistics of an exhaustive enumeration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Number of complete runs (leaves) explored.
    pub runs: usize,
    /// Number of DFS nodes (prefixes) visited.
    pub nodes: usize,
    /// Maximum schedule length seen.
    pub max_depth: usize,
}

/// Exhaustively explores every schedule of `executor` (which must not have
/// taken steps yet), invoking `on_prefix` at every intermediate node and
/// `on_complete` at every finished run.
///
/// Either callback may return `false` to abort the whole enumeration early
/// (e.g. on the first counterexample).
///
/// # Errors
///
/// Propagates simulator errors ([`crate::Error::StepLimitExceeded`] when a
/// branch exceeds `step_limit`, protocol/oracle violations).
pub fn enumerate_schedules(
    executor: &Executor,
    step_limit: usize,
    on_prefix: &mut dyn FnMut(&Executor) -> bool,
    on_complete: &mut dyn FnMut(&RunOutcome) -> bool,
) -> Result<EnumerationStats> {
    let mut stats = EnumerationStats::default();
    let mut aborted = false;
    dfs(
        executor,
        0,
        step_limit,
        on_prefix,
        on_complete,
        &mut stats,
        &mut aborted,
    )?;
    Ok(stats)
}

fn dfs(
    executor: &Executor,
    depth: usize,
    step_limit: usize,
    on_prefix: &mut dyn FnMut(&Executor) -> bool,
    on_complete: &mut dyn FnMut(&RunOutcome) -> bool,
    stats: &mut EnumerationStats,
    aborted: &mut bool,
) -> Result<()> {
    if *aborted {
        return Ok(());
    }
    stats.nodes += 1;
    stats.max_depth = stats.max_depth.max(depth);
    if executor.is_done() {
        stats.runs += 1;
        if !on_complete(&executor.outcome()) {
            *aborted = true;
        }
        return Ok(());
    }
    if depth >= step_limit {
        return Err(crate::error::Error::StepLimitExceeded {
            limit: step_limit,
            undecided: executor.active(),
        });
    }
    if !on_prefix(executor) {
        *aborted = true;
        return Ok(());
    }
    for pid in executor.active() {
        let mut fork = executor.clone();
        fork.step(pid)?;
        dfs(
            &fork,
            depth + 1,
            step_limit,
            on_prefix,
            on_complete,
            stats,
            aborted,
        )?;
        if *aborted {
            return Ok(());
        }
    }
    Ok(())
}

/// Convenience wrapper: enumerates all schedules and returns every
/// complete-run outcome (use only when the run count is small).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn collect_all_runs(executor: &Executor, step_limit: usize) -> Result<Vec<RunOutcome>> {
    let mut outcomes = Vec::new();
    enumerate_schedules(executor, step_limit, &mut |_| true, &mut |o| {
        outcomes.push(o.clone());
        true
    })?;
    Ok(outcomes)
}

/// All permutations of `0..n` — the index/rank permutations used when
/// sweeping input assignments and checking index-independence.
#[must_use]
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permutations(&mut current, n, &mut out);
    out
}

fn heap_permutations(current: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(current.clone());
        return;
    }
    for i in 0..k {
        heap_permutations(current, k - 1, out);
        if k % 2 == 0 {
            current.swap(i, k - 1);
        } else {
            current.swap(0, k - 1);
        }
    }
}

/// Schedules as pid sequences for documentation/debugging: extracts the
/// schedule of every complete run.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn collect_all_schedules(
    executor: &Executor,
    step_limit: usize,
) -> Result<Vec<Vec<Pid>>> {
    Ok(collect_all_runs(executor, step_limit)?
        .into_iter()
        .map(|o| o.history.schedule())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Action, Observation, Protocol};

    /// Two-step protocol: write, snapshot, decide how many cells it saw
    /// non-empty.
    #[derive(Debug, Clone)]
    struct SeenCount;

    impl Protocol for SeenCount {
        fn next_action(&mut self, obs: Observation) -> Action {
            match obs {
                Observation::Start => Action::Write(vec![1]),
                Observation::Written => Action::Snapshot,
                Observation::Snapshot(snap) => {
                    Action::Decide(snap.iter().flatten().count())
                }
                _ => unreachable!(),
            }
        }
        fn boxed_clone(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
    }

    fn exec(n: usize) -> Executor {
        let protocols = (0..n)
            .map(|_| Box::new(SeenCount) as Box<dyn Protocol>)
            .collect();
        Executor::new(protocols, vec![])
    }

    #[test]
    fn enumeration_counts_for_two_processes() {
        // Each process takes 3 steps; schedules = interleavings where both
        // are always active until they decide. Total = C(6,3) = 20 minus…
        // actually exactly the number of interleavings of two length-3
        // sequences = C(6,3) = 20.
        let stats = enumerate_schedules(&exec(2), 100, &mut |_| true, &mut |_| true).unwrap();
        assert_eq!(stats.runs, 20);
        assert_eq!(stats.max_depth, 6);
    }

    #[test]
    fn enumeration_counts_for_three_processes() {
        // Interleavings of three length-3 sequences: 9!/(3!·3!·3!) = 1680.
        let stats = enumerate_schedules(&exec(3), 100, &mut |_| true, &mut |_| true).unwrap();
        assert_eq!(stats.runs, 1680);
    }

    #[test]
    fn seen_counts_respect_snapshot_containment() {
        // In every run the multiset of decisions must contain at least one
        // process that saw everyone (the last to snapshot) and every
        // decision is between 1 and n.
        let outcomes = collect_all_runs(&exec(2), 100).unwrap();
        for o in &outcomes {
            let d: Vec<usize> = o.decided_values();
            assert!(d.iter().all(|&x| (1..=2).contains(&x)));
            assert!(d.contains(&2), "someone must see both writes: {d:?}");
        }
    }

    #[test]
    fn early_abort_stops_enumeration() {
        let mut seen = 0;
        let stats = enumerate_schedules(&exec(2), 100, &mut |_| true, &mut |_| {
            seen += 1;
            seen < 5
        })
        .unwrap();
        assert_eq!(stats.runs, 5);
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        let mut p3 = permutations(3);
        p3.sort();
        p3.dedup();
        assert_eq!(p3.len(), 6, "permutations must be distinct");
    }

    #[test]
    fn schedules_are_distinct() {
        let mut schedules = collect_all_schedules(&exec(2), 100).unwrap();
        let before = schedules.len();
        schedules.sort();
        schedules.dedup();
        assert_eq!(schedules.len(), before);
    }
}
