//! Exhaustive schedule enumeration for small systems.
//!
//! Wait-free correctness quantifies over *all* runs. For small `n` and
//! bounded algorithms the simulator can enumerate every schedule exactly.
//! Two engines are provided:
//!
//! * [`enumerate_schedules`] — the exact walk over every schedule prefix,
//!   driven by an **explicit-stack worklist** (no recursion) over
//!   copy-on-write executor forks. Callbacks see every prefix and every
//!   complete run, with full event histories.
//! * [`enumerate_decisions_memoized`] — the fast path for the common
//!   question "what is the multiset of decision vectors over all runs?".
//!   It prunes the schedule tree with two sound reductions:
//!
//!   1. a **canonical-state memo table**: executor states reached along
//!      different interleavings (commuting steps) are explored once —
//!      states are fingerprinted via [`Protocol::state_key`] and, under
//!      [`Symmetry::Exchangeable`], canonicalized over all process
//!      relabelings so an entire symmetry orbit shares one entry;
//!   2. **orbit pruning** of never-stepped processes: when the machines
//!      are exchangeable, the subtree of "process `q` moves first" is a
//!      relabeling of the subtree of the lowest-index idle process, so it
//!      is derived by a transposition instead of explored.
//!
//!   The result is *identical* to the naive walk (the multiset, including
//!   multiplicities, is reconstructed exactly — property-tested in
//!   `tests/enumeration_equivalence.rs`) while visiting strictly fewer
//!   nodes on symmetric protocols.
//!
//! [`Symmetry::Exchangeable`] asserts a contract the enumerator cannot
//! check: all `n` machines are identical state machines whose behaviour
//! depends on a snapshot view only up to process relabeling (the paper's
//! index-independence, strengthened to the full executor state). All of
//! the paper's symmetric GSB protocols satisfy it; protocols seeded with
//! distinct identities generally do not — use [`Symmetry::None`], which
//! still merges states reached along commuting interleavings.
//!
//! Crash-containing runs need no separate enumeration for task validity —
//! every prefix of a crash-free schedule is reached, and
//! [`partial_decisions_completable`](crate::sim::partial_decisions_completable)
//! can be checked at every node (the decided values of any prefix must
//! remain completable, which is exactly the validity requirement of
//! Definition 1 restated prefix-wise).

use std::collections::{BTreeMap, HashMap};

use crate::error::Result;
use crate::process::Pid;
use crate::sim::{Executor, RunOutcome};

/// Statistics of an exhaustive enumeration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Number of complete runs accounted for (including runs reconstructed
    /// from memo hits and orbit derivations — always equal to the naive
    /// engine's count on the same executor).
    pub runs: usize,
    /// Number of nodes visited (prefixes explored, plus one per memo hit
    /// or orbit derivation, which terminate immediately).
    pub nodes: usize,
    /// Maximum schedule length seen.
    pub max_depth: usize,
    /// Subtrees answered from the canonical-state memo table.
    pub memo_hits: usize,
    /// Subtrees derived by process-relabeling instead of exploration.
    pub orbit_skips: usize,
}

/// How aggressively [`enumerate_decisions_memoized`] may exploit process
/// symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// No relabeling: only *identical* executor states are merged. Sound
    /// for every protocol family.
    None,
    /// Process-relabeling symmetry: the `n` machines are asserted to be
    /// exchangeable (identical machines, view-relabeling-covariant
    /// behaviour). Orbits of states share one memo entry and idle-process
    /// branches are derived by transposition. Executors with installed
    /// oracle objects get no symmetry reduction (oracle hidden state may
    /// depend on process indices), only exact-state merging.
    Exchangeable,
}

/// A multiset of complete-run decision vectors: `vector → multiplicity`.
pub type DecisionMultiset = BTreeMap<Vec<usize>, u64>;

/// Exhaustively explores every schedule of `executor` (which must not have
/// taken steps yet), invoking `on_prefix` at every intermediate node and
/// `on_complete` at every finished run, via an explicit-stack worklist
/// (prefixes are visited in the same depth-first order as the recursive
/// reference implementation).
///
/// Either callback may return `false` to abort the whole enumeration early
/// (e.g. on the first counterexample).
///
/// # Errors
///
/// Propagates simulator errors ([`crate::Error::StepLimitExceeded`] when a
/// branch exceeds `step_limit`, protocol/oracle violations).
pub fn enumerate_schedules(
    executor: &Executor,
    step_limit: usize,
    on_prefix: &mut dyn FnMut(&Executor) -> bool,
    on_complete: &mut dyn FnMut(&RunOutcome) -> bool,
) -> Result<EnumerationStats> {
    // Children are forked and stepped *lazily* — when popped, not when
    // pushed — so step errors and callback aborts surface in exactly the
    // prefix order the recursive reference visits (an error on process
    // q's branch must not preempt the complete enumeration of process
    // p < q's subtree).
    enum WorkItem {
        Root(Box<Executor>),
        Child {
            parent: std::rc::Rc<Executor>,
            pid: Pid,
            depth: usize,
        },
    }
    let mut stats = EnumerationStats::default();
    let mut stack: Vec<WorkItem> = vec![WorkItem::Root(Box::new(executor.clone()))];
    while let Some(item) = stack.pop() {
        let (exec, depth) = match item {
            WorkItem::Root(exec) => (*exec, 0),
            WorkItem::Child { parent, pid, depth } => {
                let mut fork = (*parent).clone();
                fork.step(pid)?;
                (fork, depth)
            }
        };
        stats.nodes += 1;
        stats.max_depth = stats.max_depth.max(depth);
        if exec.is_done() {
            stats.runs += 1;
            if !on_complete(&exec.outcome()) {
                return Ok(stats);
            }
            continue;
        }
        if depth >= step_limit {
            return Err(crate::error::Error::StepLimitExceeded {
                limit: step_limit,
                undecided: exec.active(),
            });
        }
        if !on_prefix(&exec) {
            return Ok(stats);
        }
        // Reverse push order so the lowest pid is popped (visited) first,
        // matching the recursive reference's child order.
        let active = exec.active();
        let parent = std::rc::Rc::new(exec);
        for pid in active.into_iter().rev() {
            stack.push(WorkItem::Child {
                parent: parent.clone(),
                pid,
                depth: depth + 1,
            });
        }
    }
    Ok(stats)
}

/// The retained **naive reference DFS**: plain recursion, full clones, no
/// pruning. Semantically identical to [`enumerate_schedules`]; kept as the
/// oracle the property tests compare the memoized engine against.
///
/// # Errors
///
/// Same contract as [`enumerate_schedules`].
pub fn enumerate_schedules_reference(
    executor: &Executor,
    step_limit: usize,
    on_prefix: &mut dyn FnMut(&Executor) -> bool,
    on_complete: &mut dyn FnMut(&RunOutcome) -> bool,
) -> Result<EnumerationStats> {
    let mut stats = EnumerationStats::default();
    let mut aborted = false;
    dfs(
        executor,
        0,
        step_limit,
        on_prefix,
        on_complete,
        &mut stats,
        &mut aborted,
    )?;
    Ok(stats)
}

fn dfs(
    executor: &Executor,
    depth: usize,
    step_limit: usize,
    on_prefix: &mut dyn FnMut(&Executor) -> bool,
    on_complete: &mut dyn FnMut(&RunOutcome) -> bool,
    stats: &mut EnumerationStats,
    aborted: &mut bool,
) -> Result<()> {
    if *aborted {
        return Ok(());
    }
    stats.nodes += 1;
    stats.max_depth = stats.max_depth.max(depth);
    if executor.is_done() {
        stats.runs += 1;
        if !on_complete(&executor.outcome()) {
            *aborted = true;
        }
        return Ok(());
    }
    if depth >= step_limit {
        return Err(crate::error::Error::StepLimitExceeded {
            limit: step_limit,
            undecided: executor.active(),
        });
    }
    if !on_prefix(executor) {
        *aborted = true;
        return Ok(());
    }
    for pid in executor.active() {
        let mut fork = executor.clone();
        fork.step(pid)?;
        dfs(
            &fork,
            depth + 1,
            step_limit,
            on_prefix,
            on_complete,
            stats,
            aborted,
        )?;
        if *aborted {
            return Ok(());
        }
    }
    Ok(())
}

/// Collects the decision-vector multiset of all complete runs with the
/// naive reference DFS — the oracle side of the equivalence property.
///
/// # Errors
///
/// Same contract as [`enumerate_schedules`].
pub fn enumerate_decisions_naive(
    executor: &Executor,
    step_limit: usize,
) -> Result<(DecisionMultiset, EnumerationStats)> {
    let mut multiset = DecisionMultiset::new();
    let stats = enumerate_schedules_reference(executor, step_limit, &mut |_| true, &mut |o| {
        let decisions: Vec<usize> = o
            .decisions
            .iter()
            .map(|d| d.expect("complete run has all decisions"))
            .collect();
        *multiset.entry(decisions).or_insert(0) += 1;
        true
    })?;
    Ok((multiset, stats))
}

/// One planned child of a worklist frame.
#[derive(Debug, Clone, Copy)]
enum ChildPlan {
    /// Fork and explore (or answer from the memo).
    Expand(Pid),
    /// The subtree of `dst` is the `(src dst)`-transposition of the
    /// (already expanded) subtree of `src` — exchangeable idle processes.
    Derived { src: Pid, dst: Pid },
}

/// A node of the explicit-stack worklist.
#[derive(Debug)]
struct Frame {
    exec: Executor,
    depth: usize,
    plans: Vec<ChildPlan>,
    next: usize,
    /// Decision multiset of the subtree, accumulated as children finish.
    acc: DecisionMultiset,
    /// Longest path from this node to a leaf, accumulated likewise.
    height: usize,
    /// Subtree multisets (and heights) of expanded children that later
    /// `Derived` siblings still need, keyed by pid index.
    keep: BTreeMap<usize, (DecisionMultiset, usize)>,
    /// Pids whose expanded subtrees later `Derived` siblings reference
    /// (fixed at frame creation).
    needed: Vec<usize>,
    /// Canonical key and relabeling to publish at frame exit.
    canon: Option<(Vec<u64>, Vec<usize>)>,
    /// Which pid of the parent frame this frame expands.
    from_pid: Option<usize>,
}

impl Frame {
    fn new(
        exec: Executor,
        depth: usize,
        symmetry: Symmetry,
        canon: Option<(Vec<u64>, Vec<usize>)>,
        from_pid: Option<usize>,
    ) -> Self {
        let active = exec.active();
        let mut plans = Vec::with_capacity(active.len());
        let mut idle_rep: Option<Pid> = None;
        // Oracle hidden state may depend on process indices (the trait
        // hands `invoke` the real pid), so orbit derivation — like the
        // state memo — is only sound without oracles.
        let orbits_sound = symmetry == Symmetry::Exchangeable && exec.oracle_count() == 0;
        for pid in active {
            if orbits_sound && exec.steps_taken(pid) == 0 {
                match idle_rep {
                    None => {
                        idle_rep = Some(pid);
                        plans.push(ChildPlan::Expand(pid));
                    }
                    Some(rep) => plans.push(ChildPlan::Derived { src: rep, dst: pid }),
                }
            } else {
                plans.push(ChildPlan::Expand(pid));
            }
        }
        let needed: Vec<usize> = plans
            .iter()
            .filter_map(|p| match p {
                ChildPlan::Derived { src, .. } => Some(src.index()),
                ChildPlan::Expand(_) => None,
            })
            .collect();
        Frame {
            exec,
            depth,
            plans,
            next: 0,
            acc: DecisionMultiset::new(),
            height: 0,
            keep: BTreeMap::new(),
            needed,
            canon,
            from_pid,
        }
    }

    /// Folds one finished child (pid `pid`, multiset `sub`, height `h`)
    /// into the accumulator.
    fn absorb(&mut self, pid: usize, sub: DecisionMultiset, h: usize) {
        self.height = self.height.max(h + 1);
        if self.needed.contains(&pid) {
            self.keep.insert(pid, (sub.clone(), h));
        }
        merge_into(&mut self.acc, sub);
    }
}

fn merge_into(acc: &mut DecisionMultiset, sub: DecisionMultiset) {
    for (vector, count) in sub {
        *acc.entry(vector).or_insert(0) += count;
    }
}

/// Relabels every vector of `ms` by `perm` (entry `i` moves to `perm[i]`).
fn apply_perm(ms: &DecisionMultiset, perm: &[usize]) -> DecisionMultiset {
    ms.iter()
        .map(|(v, &c)| {
            let mut out = vec![0usize; v.len()];
            for (i, &d) in v.iter().enumerate() {
                out[perm[i]] = d;
            }
            (out, c)
        })
        .collect()
}

/// Inverse of [`apply_perm`]: entry `perm[i]` moves back to `i`.
fn unapply_perm(ms: &DecisionMultiset, perm: &[usize]) -> DecisionMultiset {
    ms.iter()
        .map(|(v, &c)| {
            let out: Vec<usize> = perm.iter().map(|&j| v[j]).collect();
            (out, c)
        })
        .collect()
}

/// Swaps entries `a` and `b` of every vector.
fn transpose(ms: &DecisionMultiset, a: usize, b: usize) -> DecisionMultiset {
    ms.iter()
        .map(|(v, &c)| {
            let mut out = v.clone();
            out.swap(a, b);
            (out, c)
        })
        .collect()
}

/// Minimal permuted state encoding over `perms`, with the minimizing
/// relabeling. `None` when the state is not fingerprintable.
fn canonicalize(exec: &Executor, perms: &[Vec<usize>]) -> Option<(Vec<u64>, Vec<usize>)> {
    let mut best: Option<(Vec<u64>, Vec<usize>)> = None;
    for perm in perms {
        let key = exec.state_key_permuted(perm)?;
        if best.as_ref().is_none_or(|(b, _)| key < *b) {
            best = Some((key, perm.clone()));
        }
    }
    best
}

/// Enumerates the decision-vector multiset of all complete runs with the
/// **memoized symmetry-reduced worklist engine** (see the module docs for
/// the two reductions and the [`Symmetry::Exchangeable`] contract).
///
/// The returned multiset — including multiplicities — is exactly what
/// [`enumerate_decisions_naive`] computes, at a fraction of the visited
/// nodes. The memo table holds one decision multiset per canonical state,
/// so memory is proportional to the number of distinct states; this is
/// the intended trade for small-`n` exhaustive checks (`n ≤ 4`).
///
/// # Errors
///
/// Propagates simulator errors; reports
/// [`StepLimitExceeded`](crate::Error::StepLimitExceeded) exactly when the
/// naive walk would (memo entries carry subtree heights, so limit
/// violations inside shared subtrees are still detected).
pub fn enumerate_decisions_memoized(
    executor: &Executor,
    step_limit: usize,
    symmetry: Symmetry,
) -> Result<(DecisionMultiset, EnumerationStats)> {
    let mut stats = EnumerationStats::default();
    let mut root = executor.clone();
    root.set_instrumentation(false);
    let n = root.n();
    let perms: Vec<Vec<usize>> = match symmetry {
        Symmetry::Exchangeable => permutations(n),
        Symmetry::None => vec![(0..n).collect()],
    };
    let mut memo: HashMap<Vec<u64>, (DecisionMultiset, usize)> = HashMap::new();

    stats.nodes += 1; // the root
    let root_canon = canonicalize(&root, &perms);
    let mut stack: Vec<Frame> = vec![Frame::new(root, 0, symmetry, root_canon, None)];
    let mut result: Option<(DecisionMultiset, usize)> = None;

    while !stack.is_empty() {
        let top = stack.len() - 1;
        if stack[top].next < stack[top].plans.len() {
            let plan = stack[top].plans[stack[top].next];
            stack[top].next += 1;
            match plan {
                ChildPlan::Derived { src, dst } => {
                    stats.nodes += 1;
                    stats.orbit_skips += 1;
                    let (sub, h) = stack[top]
                        .keep
                        .get(&src.index())
                        .expect("representative subtree expanded before derivation")
                        .clone();
                    let transposed = transpose(&sub, src.index(), dst.index());
                    stack[top].absorb(dst.index(), transposed, h);
                }
                ChildPlan::Expand(pid) => {
                    let mut fork = stack[top].exec.clone();
                    fork.step(pid)?;
                    let depth = stack[top].depth + 1;
                    stats.nodes += 1;
                    stats.max_depth = stats.max_depth.max(depth);
                    if fork.is_done() {
                        let decisions: Vec<usize> = fork
                            .decisions()
                            .iter()
                            .map(|d| d.expect("complete run has all decisions"))
                            .collect();
                        let mut leaf = DecisionMultiset::new();
                        leaf.insert(decisions, 1);
                        stack[top].absorb(pid.index(), leaf, 0);
                        continue;
                    }
                    if depth >= step_limit {
                        return Err(crate::error::Error::StepLimitExceeded {
                            limit: step_limit,
                            undecided: fork.active(),
                        });
                    }
                    let canon = canonicalize(&fork, &perms);
                    if let Some((key, perm)) = &canon {
                        if let Some((cached, height)) = memo.get(key) {
                            // The subtree's non-done nodes sit at depths
                            // `depth..depth + height` (its leaves, at
                            // `depth + height`, are done), so the naive
                            // walk errors iff the deepest non-done node
                            // reaches the limit: depth + height − 1 ≥
                            // limit.
                            if depth + height > step_limit {
                                return Err(crate::error::Error::StepLimitExceeded {
                                    limit: step_limit,
                                    undecided: fork.active(),
                                });
                            }
                            stats.memo_hits += 1;
                            let sub = unapply_perm(cached, perm);
                            let h = *height;
                            stack[top].absorb(pid.index(), sub, h);
                            continue;
                        }
                    }
                    stack.push(Frame::new(fork, depth, symmetry, canon, Some(pid.index())));
                }
            }
        } else {
            let frame = stack.pop().expect("stack is non-empty");
            if let Some((key, perm)) = &frame.canon {
                memo.insert(key.clone(), (apply_perm(&frame.acc, perm), frame.height));
            }
            match stack.last_mut() {
                Some(parent) => {
                    parent.absorb(
                        frame.from_pid.expect("non-root frame records its origin"),
                        frame.acc,
                        frame.height,
                    );
                }
                None => result = Some((frame.acc, frame.height)),
            }
        }
    }

    let (multiset, root_height) = result.expect("worklist always finishes the root frame");
    stats.runs = multiset
        .values()
        .map(|&c| usize::try_from(c).expect("run count fits usize"))
        .sum();
    stats.max_depth = stats.max_depth.max(root_height);
    Ok((multiset, stats))
}

/// Convenience wrapper: enumerates all schedules and returns every
/// complete-run outcome (use only when the run count is small).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn collect_all_runs(executor: &Executor, step_limit: usize) -> Result<Vec<RunOutcome>> {
    let mut outcomes = Vec::new();
    enumerate_schedules(executor, step_limit, &mut |_| true, &mut |o| {
        outcomes.push(o.clone());
        true
    })?;
    Ok(outcomes)
}

/// All permutations of `0..n` — the index/rank permutations used when
/// sweeping input assignments, checking index-independence, and
/// canonicalizing states in the memoized enumerator. `permutations(0)` is
/// the singleton `[[]]` (the empty permutation), matching `0! = 1`.
#[must_use]
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permutations(&mut current, n, &mut out);
    out
}

fn heap_permutations(current: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        // Covers k = 0 as well (guarded by `permutations`, but kept safe
        // for direct callers): the only permutation is `current` itself.
        out.push(current.clone());
        return;
    }
    for i in 0..k {
        heap_permutations(current, k - 1, out);
        if k.is_multiple_of(2) {
            current.swap(i, k - 1);
        } else {
            current.swap(0, k - 1);
        }
    }
}

/// Schedules as pid sequences for documentation/debugging: extracts the
/// schedule of every complete run.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn collect_all_schedules(executor: &Executor, step_limit: usize) -> Result<Vec<Vec<Pid>>> {
    Ok(collect_all_runs(executor, step_limit)?
        .into_iter()
        .map(|o| o.history.schedule())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Action, Observation, Protocol};

    /// Two-step protocol: write, snapshot, decide how many cells it saw
    /// non-empty.
    #[derive(Debug, Clone)]
    struct SeenCount;

    impl Protocol for SeenCount {
        fn next_action(&mut self, obs: Observation) -> Action {
            match obs {
                Observation::Start => Action::Write(vec![1]),
                Observation::Written => Action::Snapshot,
                Observation::Snapshot(snap) => Action::Decide(snap.iter().flatten().count()),
                _ => unreachable!(),
            }
        }
        fn boxed_clone(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
        fn state_key(&self) -> Option<Vec<u64>> {
            Some(Vec::new()) // stateless machine
        }
    }

    fn exec(n: usize) -> Executor {
        let protocols = (0..n)
            .map(|_| Box::new(SeenCount) as Box<dyn Protocol>)
            .collect();
        Executor::new(protocols, vec![])
    }

    #[test]
    fn enumeration_counts_for_two_processes() {
        // Each process takes 3 steps; schedules = interleavings where both
        // are always active until they decide. Total = C(6,3) = 20 minus…
        // actually exactly the number of interleavings of two length-3
        // sequences = C(6,3) = 20.
        let stats = enumerate_schedules(&exec(2), 100, &mut |_| true, &mut |_| true).unwrap();
        assert_eq!(stats.runs, 20);
        assert_eq!(stats.max_depth, 6);
    }

    #[test]
    fn enumeration_counts_for_three_processes() {
        // Interleavings of three length-3 sequences: 9!/(3!·3!·3!) = 1680.
        let stats = enumerate_schedules(&exec(3), 100, &mut |_| true, &mut |_| true).unwrap();
        assert_eq!(stats.runs, 1680);
    }

    #[test]
    fn worklist_matches_reference_dfs() {
        for n in 1..=3 {
            let mut worklist_runs = Vec::new();
            let a = enumerate_schedules(&exec(n), 100, &mut |_| true, &mut |o| {
                worklist_runs.push(o.decisions.clone());
                true
            })
            .unwrap();
            let mut reference_runs = Vec::new();
            let b = enumerate_schedules_reference(&exec(n), 100, &mut |_| true, &mut |o| {
                reference_runs.push(o.decisions.clone());
                true
            })
            .unwrap();
            assert_eq!(a, b, "stats diverge at n = {n}");
            assert_eq!(
                worklist_runs, reference_runs,
                "run order diverges at n = {n}"
            );
        }
    }

    #[test]
    fn memoized_engine_matches_naive_multiset() {
        for n in 1..=3 {
            let (naive, naive_stats) = enumerate_decisions_naive(&exec(n), 100).unwrap();
            for symmetry in [Symmetry::None, Symmetry::Exchangeable] {
                let (memoized, stats) =
                    enumerate_decisions_memoized(&exec(n), 100, symmetry).unwrap();
                assert_eq!(naive, memoized, "n = {n}, {symmetry:?}");
                assert_eq!(stats.runs, naive_stats.runs, "n = {n}, {symmetry:?}");
                assert_eq!(stats.max_depth, naive_stats.max_depth);
            }
        }
    }

    #[test]
    fn memoized_engine_visits_strictly_fewer_nodes() {
        for n in [2usize, 3] {
            let (_, naive) = enumerate_decisions_naive(&exec(n), 100).unwrap();
            let (_, merged) = enumerate_decisions_memoized(&exec(n), 100, Symmetry::None).unwrap();
            let (_, reduced) =
                enumerate_decisions_memoized(&exec(n), 100, Symmetry::Exchangeable).unwrap();
            assert!(
                merged.nodes < naive.nodes,
                "state merging saves nothing at n = {n}: {merged:?} vs {naive:?}"
            );
            assert!(
                reduced.nodes < merged.nodes,
                "symmetry saves nothing at n = {n}: {reduced:?} vs {merged:?}"
            );
        }
    }

    #[test]
    fn exact_step_limit_boundary_matches_naive() {
        // n = 2 SeenCount runs are exactly 6 steps deep: a limit of 6
        // accommodates every run (non-done nodes all sit at depth ≤ 5),
        // so every engine must succeed; a limit of 5 must fail in every
        // engine. Regression for an off-by-one in the memo-hit check.
        let (naive, _) = enumerate_decisions_naive(&exec(2), 6).unwrap();
        for symmetry in [Symmetry::None, Symmetry::Exchangeable] {
            let (memoized, _) = enumerate_decisions_memoized(&exec(2), 6, symmetry).unwrap();
            assert_eq!(naive, memoized, "{symmetry:?}");
            let err = enumerate_decisions_memoized(&exec(2), 5, symmetry).unwrap_err();
            assert!(matches!(err, crate::Error::StepLimitExceeded { .. }));
        }
        assert!(enumerate_decisions_naive(&exec(2), 5).is_err());
    }

    #[test]
    fn step_limit_violations_survive_memoization() {
        // Depth 6 is needed for n = 2; a limit of 4 must error in every
        // engine even when subtrees come from the memo.
        for symmetry in [Symmetry::None, Symmetry::Exchangeable] {
            let err = enumerate_decisions_memoized(&exec(2), 4, symmetry).unwrap_err();
            assert!(matches!(err, crate::Error::StepLimitExceeded { .. }));
        }
        let err = enumerate_decisions_naive(&exec(2), 4).unwrap_err();
        assert!(matches!(err, crate::Error::StepLimitExceeded { .. }));
    }

    #[test]
    fn seen_counts_respect_snapshot_containment() {
        // In every run the multiset of decisions must contain at least one
        // process that saw everyone (the last to snapshot) and every
        // decision is between 1 and n.
        let outcomes = collect_all_runs(&exec(2), 100).unwrap();
        for o in &outcomes {
            let d: Vec<usize> = o.decided_values();
            assert!(d.iter().all(|&x| (1..=2).contains(&x)));
            assert!(d.contains(&2), "someone must see both writes: {d:?}");
        }
    }

    #[test]
    fn early_abort_stops_enumeration() {
        let mut seen = 0;
        let stats = enumerate_schedules(&exec(2), 100, &mut |_| true, &mut |_| {
            seen += 1;
            seen < 5
        })
        .unwrap();
        assert_eq!(stats.runs, 5);
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(0), vec![Vec::<usize>::new()]);
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        let mut p3 = permutations(3);
        p3.sort();
        p3.dedup();
        assert_eq!(p3.len(), 6, "permutations must be distinct");
    }

    #[test]
    fn schedules_are_distinct() {
        let mut schedules = collect_all_schedules(&exec(2), 100).unwrap();
        let before = schedules.len();
        schedules.sort();
        schedules.dedup();
        assert_eq!(schedules.len(), before);
    }
}
