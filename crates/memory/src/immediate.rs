//! One-shot immediate snapshot (Borowsky–Gafni), as a protocol sub-machine.
//!
//! Immediate snapshot (IS) is the object behind the paper's impossibility
//! machinery: Theorem 11 restricts attention to immediate-snapshot
//! executions, whose protocol complex is the standard chromatic
//! subdivision (computed in `gsb-topology`). This module implements the
//! classical wait-free IS algorithm from write/snapshot:
//!
//! ```text
//! level := n + 1
//! repeat  level := level − 1
//!         write (id, level)
//!         snap := snapshot()
//!         S := { j : level_j ≤ level }
//! until |S| ≥ level
//! view := identities of S
//! ```
//!
//! The returned views satisfy, in every execution (tested exhaustively for
//! small `n` and randomly beyond):
//!
//! * **self-inclusion** — `id_i ∈ V_i`;
//! * **containment** — views are totally ordered by `⊆`;
//! * **immediacy** — `id_j ∈ V_i ⇒ V_j ⊆ V_i`.

use crate::register::{Value, Word};
use crate::sim::{Action, Observation, Protocol};

/// What the IS sub-machine wants next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsStep {
    /// Write this value to the process's own register.
    Write(Value),
    /// Take an atomic snapshot.
    Snapshot,
    /// The IS operation finished with this view: the identities of the
    /// processes seen at or below the final level, sorted ascending.
    Done(Vec<Word>),
}

/// The Borowsky–Gafni one-shot immediate-snapshot machine.
#[derive(Debug, Clone)]
pub struct IsMachine {
    id: Word,
    level: usize,
    awaiting_snapshot: bool,
}

impl IsMachine {
    /// Creates a machine for a process with identity `id` among `n`.
    #[must_use]
    pub fn new(id: Word, n: usize) -> Self {
        IsMachine {
            id,
            level: n + 1,
            awaiting_snapshot: false,
        }
    }

    /// First step: descend to level `n` and write.
    #[must_use]
    pub fn start(&mut self) -> IsStep {
        self.descend()
    }

    fn descend(&mut self) -> IsStep {
        debug_assert!(self.level >= 1, "levels stay positive");
        self.level -= 1;
        self.awaiting_snapshot = false;
        IsStep::Write(vec![self.id, self.level as Word])
    }

    /// Feeds the observation for the previous step: `None` after a write
    /// acknowledgement, `Some(snapshot)` after a snapshot.
    pub fn absorb(&mut self, snapshot: Option<Vec<Option<Value>>>) -> IsStep {
        match snapshot {
            None => {
                self.awaiting_snapshot = true;
                IsStep::Snapshot
            }
            Some(snap) => {
                debug_assert!(self.awaiting_snapshot, "snapshot arrives after a write");
                // Both plain `[id, level]` cells and published-view cells
                // `[id, level, MARKER, …]` carry the level in position 1.
                let mut seen: Vec<(Word, usize)> = snap
                    .iter()
                    .flatten()
                    .filter_map(|v| {
                        if v.len() >= 2 {
                            Some((v[0], v[1] as usize))
                        } else {
                            None
                        }
                    })
                    .collect();
                seen.retain(|&(_, level)| level <= self.level);
                if seen.len() >= self.level {
                    let mut view: Vec<Word> = seen.into_iter().map(|(id, _)| id).collect();
                    view.sort_unstable();
                    IsStep::Done(view)
                } else {
                    self.descend()
                }
            }
        }
    }

    /// The current level (for tests and complexity accounting).
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }
}

/// A protocol wrapper for property tests: runs the IS machine, publishes
/// the obtained view in its own register as `[id, level, MARKER, view…]`
/// (keeping the `[id, level]` prefix other IS machines rely on), then
/// decides the view's size. Tests recover the views from the registers.
#[derive(Debug, Clone)]
pub struct IsProtocol {
    machine: IsMachine,
    started: bool,
    view: Option<Vec<Word>>,
}

/// Marker word separating the IS prefix from a published view.
pub const VIEW_MARKER: Word = u64::MAX;

impl IsProtocol {
    /// Creates the protocol for a process with identity `id` among `n`.
    #[must_use]
    pub fn new(id: Word, n: usize) -> Self {
        IsProtocol {
            machine: IsMachine::new(id, n),
            started: false,
            view: None,
        }
    }

    /// Decodes a published view from a register value, if present.
    #[must_use]
    pub fn decode_view(value: &[Word]) -> Option<(Word, Vec<Word>)> {
        if value.len() >= 3 && value[2] == VIEW_MARKER {
            Some((value[0], value[3..].to_vec()))
        } else {
            None
        }
    }
}

impl Protocol for IsProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        if let Some(view) = &self.view {
            // View already published; decide its size.
            return Action::Decide(view.len());
        }
        let step = match observation {
            Observation::Start => {
                self.started = true;
                self.machine.start()
            }
            Observation::Written => self.machine.absorb(None),
            Observation::Snapshot(snap) => self.machine.absorb(Some(snap)),
            other => unreachable!("IS protocol never observes {other:?}"),
        };
        match step {
            IsStep::Write(value) => Action::Write(value),
            IsStep::Snapshot => Action::Snapshot,
            IsStep::Done(view) => {
                let mut published =
                    vec![self.machine.id, self.machine.level() as Word, VIEW_MARKER];
                published.extend(&view);
                self.view = Some(view);
                Action::Write(published)
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// Checks the three IS properties over the published views
/// (`(id, view)` pairs). Returns a description of the first violation.
///
/// # Errors
///
/// Returns a human-readable description of the violated property.
pub fn check_is_properties(views: &[(Word, Vec<Word>)]) -> std::result::Result<(), String> {
    for (id, view) in views {
        if !view.contains(id) {
            return Err(format!("self-inclusion violated: {id} ∉ {view:?}"));
        }
    }
    for (i, (id_i, view_i)) in views.iter().enumerate() {
        for (id_j, view_j) in views.iter().skip(i + 1) {
            let i_in_j = view_i.iter().all(|x| view_j.contains(x));
            let j_in_i = view_j.iter().all(|x| view_i.contains(x));
            if !i_in_j && !j_in_i {
                return Err(format!(
                    "containment violated between {id_i}:{view_i:?} and {id_j}:{view_j:?}"
                ));
            }
        }
    }
    for (id_i, view_i) in views {
        for (id_j, view_j) in views {
            if view_i.contains(id_j) && !view_j.iter().all(|x| view_i.contains(x)) {
                return Err(format!(
                    "immediacy violated: {id_j} ∈ view of {id_i} but {view_j:?} ⊄ {view_i:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_schedules;
    use crate::scheduler::{RoundRobinScheduler, SeededScheduler};
    use crate::sim::{CrashPlan, Executor, RunOutcome};

    fn is_executor(ids: &[Word]) -> Executor {
        let n = ids.len();
        let protocols = ids
            .iter()
            .map(|&id| Box::new(IsProtocol::new(id, n)) as Box<dyn Protocol>)
            .collect();
        Executor::new(protocols, vec![])
    }

    fn views_of(exec: &Executor, outcome: &RunOutcome) -> Vec<(Word, Vec<Word>)> {
        let _ = outcome;
        (0..exec.n())
            .filter_map(|i| {
                exec.registers()
                    .read(i)
                    .and_then(|v| IsProtocol::decode_view(v))
            })
            .collect()
    }

    #[test]
    fn solo_process_sees_itself() {
        let mut exec = is_executor(&[9]);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(1), 100)
            .unwrap();
        assert_eq!(outcome.decisions, vec![Some(1)]);
        let views = views_of(&exec, &outcome);
        assert_eq!(views, vec![(9, vec![9])]);
    }

    #[test]
    fn synchronous_run_gives_everyone_full_views() {
        let mut exec = is_executor(&[3, 1, 5]);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(3), 1000)
            .unwrap();
        let views = views_of(&exec, &outcome);
        check_is_properties(&views).unwrap();
        // Lock-step schedule: all reach level 1… actually all see all.
        for (_, view) in &views {
            assert_eq!(view, &vec![1, 3, 5]);
        }
    }

    #[test]
    fn random_runs_satisfy_is_properties() {
        for seed in 0..60 {
            let mut exec = is_executor(&[4, 8, 2, 6]);
            let outcome = exec
                .run(&mut SeededScheduler::new(seed), &CrashPlan::none(4), 10_000)
                .unwrap();
            assert!(outcome.is_complete(), "seed {seed}");
            let views = views_of(&exec, &outcome);
            check_is_properties(&views).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn exhaustive_two_process_is_properties() {
        let exec = is_executor(&[2, 5]);
        let mut runs = 0usize;
        enumerate_schedules(&exec, 1000, &mut |_| true, &mut |outcome| {
            runs += 1;
            assert!(outcome.is_complete());
            true
        })
        .unwrap();
        assert!(runs >= 6, "expected several distinct schedules, got {runs}");
    }

    #[test]
    fn exhaustive_two_process_views_checked() {
        // Enumerate manually so we can inspect the registers at the leaves:
        // fork executors step by step.
        fn explore(exec: &Executor, runs: &mut usize) {
            if exec.is_done() {
                *runs += 1;
                let views: Vec<(Word, Vec<Word>)> = (0..exec.n())
                    .filter_map(|i| {
                        exec.registers()
                            .read(i)
                            .and_then(|v| IsProtocol::decode_view(v))
                    })
                    .collect();
                check_is_properties(&views).unwrap();
                return;
            }
            for pid in exec.active() {
                let mut fork = exec.clone();
                fork.step(pid).unwrap();
                explore(&fork, runs);
            }
        }
        let mut runs = 0;
        explore(&is_executor(&[2, 5]), &mut runs);
        assert!(runs > 0);
    }

    #[test]
    fn view_sizes_are_distinct_levels() {
        // IS property corollary: processes returning at the same level have
        // the same view; view sizes equal final levels.
        for seed in 0..20 {
            let mut exec = is_executor(&[1, 2, 3]);
            let outcome = exec
                .run(&mut SeededScheduler::new(seed), &CrashPlan::none(3), 10_000)
                .unwrap();
            let views = views_of(&exec, &outcome);
            for (_, view) in &views {
                assert!((1..=3).contains(&view.len()));
            }
            // Sizes must form a valid IS level assignment: if x processes
            // share the smallest view, that view has ≥ x elements.
            let mut sizes: Vec<usize> = views.iter().map(|(_, v)| v.len()).collect();
            sizes.sort_unstable();
            for (count, &size) in sizes.iter().enumerate() {
                assert!(size > count, "seed {seed}: sizes {sizes:?}");
            }
        }
    }

    #[test]
    fn decode_rejects_foreign_values() {
        assert_eq!(IsProtocol::decode_view(&[1, 2]), None);
        assert_eq!(IsProtocol::decode_view(&[]), None);
        assert_eq!(IsProtocol::decode_view(&[VIEW_MARKER]), None);
        // And accepts the published format.
        assert_eq!(
            IsProtocol::decode_view(&[7, 2, VIEW_MARKER, 3, 7]),
            Some((7, vec![3, 7]))
        );
    }
}
