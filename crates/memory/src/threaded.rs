//! Real-thread backend: the register-level primitives on hardware atomics.
//!
//! The simulator quantifies over schedules; this module complements it by
//! running the same algorithmic ideas on *real* OS threads and
//! `std::sync::atomic` primitives, as a sanity check that nothing relies
//! on simulator artifacts. It provides:
//!
//! * [`Splitter`] — the classic wait-free splitter (Moir–Anderson style)
//!   from two atomic registers;
//! * [`SplitterGrid`] — a triangular grid of splitters giving wait-free
//!   renaming into `n(n+1)/2` names;
//! * [`AtomicScanArray`] — a double-collect snapshot over versioned cells
//!   (lock-free reads of per-cell `(version, value)` pairs via
//!   `parking_lot`-guarded writes and atomic version stamps).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Outcome of passing through a splitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitterOutcome {
    /// The process stopped here (at most one per splitter).
    Stop,
    /// The process was deflected right.
    Right,
    /// The process was deflected down.
    Down,
}

/// A wait-free splitter: of the `k` processes that enter, at most one
/// stops, at most `k − 1` go right, and at most `k − 1` go down.
///
/// # Examples
///
/// ```
/// use gsb_memory::threaded::{Splitter, SplitterOutcome};
///
/// let s = Splitter::new();
/// // A solo process always stops.
/// assert_eq!(s.acquire(7), SplitterOutcome::Stop);
/// ```
#[derive(Debug, Default)]
pub struct Splitter {
    /// Last identity through the doorway (0 = nobody).
    x: AtomicU64,
    /// Door closed?
    y: AtomicBool,
}

impl Splitter {
    /// Creates an open splitter.
    #[must_use]
    pub fn new() -> Self {
        Splitter::default()
    }

    /// Runs a process with (non-zero) identity `id` through the splitter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero (reserved for "nobody").
    pub fn acquire(&self, id: u64) -> SplitterOutcome {
        assert_ne!(id, 0, "identity 0 is reserved");
        self.x.store(id, Ordering::SeqCst);
        if self.y.load(Ordering::SeqCst) {
            return SplitterOutcome::Right;
        }
        self.y.store(true, Ordering::SeqCst);
        if self.x.load(Ordering::SeqCst) == id {
            SplitterOutcome::Stop
        } else {
            SplitterOutcome::Down
        }
    }
}

/// A triangular grid of splitters implementing wait-free renaming into
/// `n(n+1)/2` names: a process walks from the corner, moving right or
/// down as deflected, and takes the name of the splitter where it stops.
///
/// # Examples
///
/// ```
/// use gsb_memory::threaded::SplitterGrid;
///
/// let grid = SplitterGrid::new(4);
/// let name = grid.rename(9);
/// assert!((1..=10).contains(&name)); // n(n+1)/2 = 10 names
/// ```
#[derive(Debug)]
pub struct SplitterGrid {
    n: usize,
    /// Row-major upper-left triangle: position `(r, d)` with
    /// `r + d ≤ n − 1` at index `triangle_index(r, d)`.
    splitters: Vec<Splitter>,
}

impl SplitterGrid {
    /// Creates the grid for up to `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        let count = n * (n + 1) / 2;
        SplitterGrid {
            n,
            splitters: (0..count).map(|_| Splitter::new()).collect(),
        }
    }

    /// Number of names `n(n+1)/2`.
    #[must_use]
    pub fn name_space(&self) -> usize {
        self.n * (self.n + 1) / 2
    }

    fn triangle_index(&self, r: usize, d: usize) -> usize {
        // Diagonal s = r + d starts at index s(s+1)/2; offset by r.
        let s = r + d;
        s * (s + 1) / 2 + r
    }

    /// Walks identity `id` through the grid; returns its name in
    /// `[1 ..= n(n+1)/2]`.
    ///
    /// Wait-free: on every step right or down, the set of processes still
    /// moving together shrinks by one, so a process stops within `n − 1`
    /// moves.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero.
    pub fn rename(&self, id: u64) -> usize {
        let (mut r, mut d) = (0usize, 0usize);
        loop {
            let index = self.triangle_index(r, d);
            match self.splitters[index].acquire(id) {
                SplitterOutcome::Stop => return index + 1,
                SplitterOutcome::Right => r += 1,
                SplitterOutcome::Down => d += 1,
            }
            assert!(
                r + d < self.n,
                "splitter guarantee violated: walked off the grid"
            );
        }
    }
}

/// A versioned cell array supporting a double-collect snapshot on real
/// threads: writes bump an atomic version; a scan retries until it sees
/// two identical version vectors.
///
/// Writers never block readers (readers only load atomics and briefly
/// clone the value under a per-cell mutex that writers hold only during
/// the value swap).
#[derive(Debug)]
pub struct AtomicScanArray {
    cells: Vec<(AtomicU64, Mutex<Option<Vec<u64>>>)>,
}

impl AtomicScanArray {
    /// Creates an array of `n` cells initialized to `⊥`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        AtomicScanArray {
            cells: (0..n)
                .map(|_| (AtomicU64::new(0), Mutex::new(None)))
                .collect(),
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes `value` into cell `i` (single-writer discipline is the
    /// caller's responsibility, as in the model).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn write(&self, i: usize, value: Vec<u64>) {
        let (version, cell) = &self.cells[i];
        {
            let mut guard = cell.lock();
            *guard = Some(value);
        }
        version.fetch_add(1, Ordering::SeqCst);
    }

    fn collect(&self) -> (Vec<u64>, Vec<Option<Vec<u64>>>) {
        let versions: Vec<u64> = self
            .cells
            .iter()
            .map(|(v, _)| v.load(Ordering::SeqCst))
            .collect();
        let values: Vec<Option<Vec<u64>>> =
            self.cells.iter().map(|(_, c)| c.lock().clone()).collect();
        (versions, values)
    }

    /// Double-collect snapshot: retries until two consecutive collects
    /// observe identical version vectors. Obstruction-free (terminates
    /// whenever writers pause); the simulator's AADGMS variant
    /// ([`crate::snapshot`]) is the wait-free construction.
    #[must_use]
    pub fn scan(&self) -> Vec<Option<Vec<u64>>> {
        let (mut versions, _) = self.collect();
        loop {
            let (versions2, values2) = self.collect();
            if versions == versions2 {
                return values2;
            }
            versions = versions2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn splitter_solo_stops() {
        let s = Splitter::new();
        assert_eq!(s.acquire(3), SplitterOutcome::Stop);
        // A later arrival is deflected.
        assert_ne!(s.acquire(4), SplitterOutcome::Stop);
    }

    #[test]
    fn splitter_concurrent_properties() {
        // k threads through one splitter: ≤ 1 stop, ≤ k−1 right, ≤ k−1 down.
        for trial in 0..50 {
            let splitter = Splitter::new();
            let stops = AtomicUsize::new(0);
            let rights = AtomicUsize::new(0);
            let downs = AtomicUsize::new(0);
            let k = 8;
            std::thread::scope(|scope| {
                for t in 0..k {
                    let splitter = &splitter;
                    let (stops, rights, downs) = (&stops, &rights, &downs);
                    scope.spawn(move || {
                        match splitter.acquire(t as u64 + 1 + trial * 100) {
                            SplitterOutcome::Stop => stops.fetch_add(1, Ordering::SeqCst),
                            SplitterOutcome::Right => rights.fetch_add(1, Ordering::SeqCst),
                            SplitterOutcome::Down => downs.fetch_add(1, Ordering::SeqCst),
                        };
                    });
                }
            });
            assert!(stops.load(Ordering::SeqCst) <= 1, "trial {trial}");
            assert!(rights.load(Ordering::SeqCst) < k, "trial {trial}");
            assert!(downs.load(Ordering::SeqCst) < k, "trial {trial}");
            assert_eq!(
                stops.load(Ordering::SeqCst)
                    + rights.load(Ordering::SeqCst)
                    + downs.load(Ordering::SeqCst),
                k
            );
        }
    }

    #[test]
    fn grid_renaming_names_are_distinct() {
        for trial in 0..30 {
            let n = 6;
            let grid = SplitterGrid::new(n);
            let names = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for t in 0..n {
                    let grid = &grid;
                    let names = &names;
                    scope.spawn(move || {
                        let name = grid.rename(t as u64 + 1 + trial * 64);
                        names.lock().push(name);
                    });
                }
            });
            let mut names = names.into_inner();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "trial {trial}: duplicate names");
            assert!(names.iter().all(|&x| (1..=grid.name_space()).contains(&x)));
        }
    }

    #[test]
    fn grid_solo_gets_name_one() {
        let grid = SplitterGrid::new(5);
        assert_eq!(grid.rename(42), 1);
    }

    #[test]
    fn atomic_scan_array_sees_writes() {
        let array = AtomicScanArray::new(3);
        assert_eq!(array.len(), 3);
        array.write(1, vec![7]);
        let snap = array.scan();
        assert_eq!(snap, vec![None, Some(vec![7]), None]);
    }

    #[test]
    fn concurrent_scans_are_consistent_prefixes() {
        // Writers write monotonically increasing values; every scan must
        // observe, per cell, a monotone value (no time travel).
        let array = AtomicScanArray::new(4);
        let observations = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let array = &array;
                scope.spawn(move || {
                    for v in 1..=20u64 {
                        array.write(w, vec![v]);
                    }
                });
            }
            for _ in 0..4 {
                let array = &array;
                let observations = &observations;
                scope.spawn(move || {
                    let mut last = vec![0u64; 4];
                    for _ in 0..50 {
                        let snap = array.scan();
                        let current: Vec<u64> = snap
                            .iter()
                            .map(|c| c.as_ref().map_or(0, |v| v[0]))
                            .collect();
                        for i in 0..4 {
                            assert!(current[i] >= last[i], "per-cell regression");
                        }
                        last = current.clone();
                        observations.lock().push(current);
                    }
                });
            }
        });
        assert_eq!(observations.into_inner().len(), 200);
    }
}
