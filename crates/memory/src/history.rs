//! Run histories: the step-by-step event log of a simulated execution.

use crate::process::Pid;
use crate::register::Value;

/// One shared-memory (or oracle/decision) event of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global step number (0-based, dense).
    pub step: usize,
    /// The process that took the step.
    pub pid: Pid,
    /// What happened.
    pub kind: EventKind,
    /// Register-array logical time *after* the step (number of writes so
    /// far) — lets checkers reconstruct memory states.
    pub version: u64,
}

/// The kind of a simulated step.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// The process wrote `value` to its own register.
    Write(Value),
    /// The process read register `cell`, observing `value`.
    ReadCell {
        /// Register index read.
        cell: usize,
        /// Value observed (`None` = still ⊥).
        value: Option<Value>,
    },
    /// The process took an atomic snapshot of the whole array.
    Snapshot,
    /// The process invoked oracle object `object` and got `reply`.
    OracleCall {
        /// Index of the oracle object.
        object: usize,
        /// Invocation argument.
        input: u64,
        /// The oracle's reply.
        reply: u64,
    },
    /// The process decided `value` (wrote its write-once output register).
    Decide(usize),
    /// The process crashed (injected by the crash plan).
    Crash,
}

/// The full event log of a run.
#[derive(Debug, Clone, Default)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        History::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events in execution order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The schedule of the run: the sequence of process indexes that took
    /// steps (crash markers excluded), as in the paper's definition of a
    /// schedule.
    #[must_use]
    pub fn schedule(&self) -> Vec<Pid> {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Crash))
            .map(|e| e.pid)
            .collect()
    }

    /// Events taken by one process, in order.
    pub fn by_pid(&self, pid: Pid) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Number of events (including crash markers).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_excludes_crashes() {
        let mut h = History::new();
        h.record(Event {
            step: 0,
            pid: Pid::new(0),
            kind: EventKind::Write(vec![1]),
            version: 1,
        });
        h.record(Event {
            step: 1,
            pid: Pid::new(1),
            kind: EventKind::Crash,
            version: 1,
        });
        h.record(Event {
            step: 1,
            pid: Pid::new(2),
            kind: EventKind::Decide(1),
            version: 1,
        });
        assert_eq!(h.schedule(), vec![Pid::new(0), Pid::new(2)]);
        assert_eq!(h.by_pid(Pid::new(0)).count(), 1);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }
}
