//! Schedulers: who takes the next step (Section 2.2's runs and schedules).
//!
//! A *schedule* is the sequence of process steps of a run. Wait-free
//! correctness quantifies over all schedules and crash patterns, so the
//! simulator makes the schedule a first-class, pluggable object:
//!
//! * [`RoundRobinScheduler`] — fully synchronous rounds.
//! * [`SeededScheduler`] — uniformly random among active processes, from a
//!   seeded generator (reproducible).
//! * [`AdversarialScheduler`] — solo bursts, reversals and biased picks
//!   driven by a seeded generator; stresses the interleavings renaming
//!   algorithms are sensitive to.
//! * [`FixedScheduler`] — replays an explicit schedule (used by the
//!   exhaustive enumerator and the permutation-replay harness).
//!
//! Crash *plans* are orthogonal to schedulers: see
//! [`CrashPlan`](crate::sim::CrashPlan).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::process::Pid;

/// Chooses which active process takes the next step.
pub trait Scheduler: std::fmt::Debug {
    /// Picks one of `active` (guaranteed non-empty, sorted by index).
    fn next(&mut self, active: &[Pid]) -> Pid;
}

/// Cycles through processes in index order, skipping inactive ones — the
/// fully synchronous schedule.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates a scheduler starting at process index 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, active: &[Pid]) -> Pid {
        // First active pid with index ≥ cursor, else wrap.
        let pick = active
            .iter()
            .find(|p| p.index() >= self.cursor)
            .or_else(|| active.first())
            .copied()
            .expect("active set is non-empty");
        self.cursor = pick.index() + 1;
        pick
    }
}

/// Picks uniformly at random among active processes (seeded, reproducible).
#[derive(Debug, Clone)]
pub struct SeededScheduler {
    rng: StdRng,
}

impl SeededScheduler {
    /// Creates a scheduler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededScheduler {
    fn next(&mut self, active: &[Pid]) -> Pid {
        active[self.rng.gen_range(0..active.len())]
    }
}

/// An adversarial scheduler: alternates *solo bursts* (one process runs
/// many steps alone — the executions behind Theorem 11's solo-run
/// argument), *reversed sweeps*, and heavily biased random picks.
#[derive(Debug, Clone)]
pub struct AdversarialScheduler {
    rng: StdRng,
    /// Current burst: process and remaining steps.
    burst: Option<(Pid, usize)>,
    max_burst: usize,
}

impl AdversarialScheduler {
    /// Creates an adversary with bursts of up to `max_burst` solo steps.
    #[must_use]
    pub fn new(seed: u64, max_burst: usize) -> Self {
        AdversarialScheduler {
            rng: StdRng::seed_from_u64(seed),
            burst: None,
            max_burst: max_burst.max(1),
        }
    }
}

impl Scheduler for AdversarialScheduler {
    fn next(&mut self, active: &[Pid]) -> Pid {
        if let Some((pid, remaining)) = self.burst {
            if remaining > 0 && active.contains(&pid) {
                self.burst = Some((pid, remaining - 1));
                return pid;
            }
            self.burst = None;
        }
        // Start a new burst 50% of the time, otherwise a biased one-off
        // pick (favouring extremal indexes, where rank-based algorithms
        // have their corner cases).
        let pick = if self.rng.gen_bool(0.5) {
            let pid = active[self.rng.gen_range(0..active.len())];
            let len = self.rng.gen_range(1..=self.max_burst);
            self.burst = Some((pid, len.saturating_sub(1)));
            pid
        } else if self.rng.gen_bool(0.5) {
            active[0]
        } else {
            *active.last().expect("active set is non-empty")
        };
        pick
    }
}

/// Replays an explicit schedule; when the script runs out (or names an
/// inactive process), falls back to the first active process. Used by the
/// exhaustive schedule enumerator, which scripts every prefix explicitly.
#[derive(Debug, Clone)]
pub struct FixedScheduler {
    script: Vec<Pid>,
    cursor: usize,
}

impl FixedScheduler {
    /// Creates a scheduler replaying `script`.
    #[must_use]
    pub fn new(script: Vec<Pid>) -> Self {
        FixedScheduler { script, cursor: 0 }
    }

    /// How many scripted steps have been consumed.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl Scheduler for FixedScheduler {
    fn next(&mut self, active: &[Pid]) -> Pid {
        while self.cursor < self.script.len() {
            let pid = self.script[self.cursor];
            self.cursor += 1;
            if active.contains(&pid) {
                return pid;
            }
            // Scripted step for an inactive process: skip it (the process
            // decided or crashed earlier than the script anticipated).
        }
        active[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ixs: &[usize]) -> Vec<Pid> {
        ixs.iter().map(|&i| Pid::new(i)).collect()
    }

    #[test]
    fn round_robin_cycles_in_order() {
        let mut s = RoundRobinScheduler::new();
        let active = pids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|_| s.next(&active).index()).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_inactive() {
        let mut s = RoundRobinScheduler::new();
        assert_eq!(s.next(&pids(&[0, 2])).index(), 0);
        assert_eq!(s.next(&pids(&[0, 2])).index(), 2);
        assert_eq!(s.next(&pids(&[0, 2])).index(), 0);
    }

    #[test]
    fn seeded_is_reproducible() {
        let active = pids(&[0, 1, 2, 3]);
        let run = |seed| {
            let mut s = SeededScheduler::new(seed);
            (0..20).map(|_| s.next(&active).index()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn adversarial_emits_solo_bursts() {
        let mut s = AdversarialScheduler::new(1, 8);
        let active = pids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..200).map(|_| s.next(&active).index()).collect();
        // There must exist a run of ≥ 4 identical consecutive picks.
        let mut best = 1;
        let mut cur = 1;
        for w in picks.windows(2) {
            if w[0] == w[1] {
                cur += 1;
                best = best.max(cur);
            } else {
                cur = 1;
            }
        }
        assert!(best >= 4, "no solo burst found in {picks:?}");
    }

    #[test]
    fn fixed_replays_and_falls_back() {
        let mut s = FixedScheduler::new(pids(&[1, 1, 0, 2]));
        let all = pids(&[0, 1, 2]);
        assert_eq!(s.next(&all).index(), 1);
        assert_eq!(s.next(&all).index(), 1);
        // Process 0 is inactive now: the scripted 0 is skipped.
        let without_0 = pids(&[1, 2]);
        assert_eq!(s.next(&without_0).index(), 2);
        assert_eq!(s.consumed(), 4);
        // Script exhausted → first active.
        assert_eq!(s.next(&without_0).index(), 1);
    }
}
