//! Human-readable rendering of run histories.
//!
//! Wait-free executions are hard to eyeball; [`render_history`] prints one
//! line per step in the notation of the paper's runs
//! (`C0 s0 C1 …` flattened to the step sequence), and
//! [`render_outcome`] summarizes decisions per process. Used by examples
//! and invaluable when a sweep reports a violating schedule.

use crate::history::{Event, EventKind, History};
use crate::sim::RunOutcome;

/// Renders one event as a single line, e.g. `p2: write [5, 1]` or
/// `p1: KS[0](0) -> 2`.
#[must_use]
pub fn render_event(event: &Event) -> String {
    let what = match &event.kind {
        EventKind::Write(value) => format!("write {value:?}"),
        EventKind::ReadCell { cell, value } => match value {
            Some(v) => format!("read A[{}] -> {v:?}", cell + 1),
            None => format!("read A[{}] -> ⊥", cell + 1),
        },
        EventKind::Snapshot => "snapshot".to_string(),
        EventKind::OracleCall {
            object,
            input,
            reply,
        } => format!("oracle[{object}]({input}) -> {reply}"),
        EventKind::Decide(v) => format!("decide {v}"),
        EventKind::Crash => "crash".to_string(),
    };
    format!("{:>4}  {}: {}", event.step, event.pid, what)
}

/// Renders a whole history, one line per event.
#[must_use]
pub fn render_history(history: &History) -> String {
    let mut out = String::new();
    for event in history.events() {
        out.push_str(&render_event(event));
        out.push('\n');
    }
    out
}

/// Renders a run outcome: per-process status and decision plus totals.
#[must_use]
pub fn render_outcome(outcome: &RunOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, (decision, status)) in outcome.decisions.iter().zip(&outcome.statuses).enumerate() {
        let shown = match decision {
            Some(v) => format!("decided {v}"),
            None => format!("{status:?}"),
        };
        let _ = writeln!(out, "  p{}: {shown}", i + 1);
    }
    let _ = writeln!(out, "  {} steps total", outcome.steps);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Pid;

    #[test]
    fn events_render_compactly() {
        let event = Event {
            step: 3,
            pid: Pid::new(1),
            kind: EventKind::OracleCall {
                object: 0,
                input: 0,
                reply: 2,
            },
            version: 1,
        };
        assert_eq!(render_event(&event), "   3  p2: oracle[0](0) -> 2");
        let write = Event {
            step: 0,
            pid: Pid::new(0),
            kind: EventKind::Write(vec![5, 1]),
            version: 1,
        };
        assert!(render_event(&write).contains("write [5, 1]"));
        let read = Event {
            step: 1,
            pid: Pid::new(0),
            kind: EventKind::ReadCell {
                cell: 2,
                value: None,
            },
            version: 1,
        };
        assert!(render_event(&read).contains("A[3] -> ⊥"));
    }

    #[test]
    fn histories_and_outcomes_render() {
        use crate::scheduler::RoundRobinScheduler;
        use crate::sim::{Action, CrashPlan, Executor, Observation, Protocol};

        #[derive(Debug, Clone)]
        struct One;
        impl Protocol for One {
            fn next_action(&mut self, obs: Observation) -> Action {
                match obs {
                    Observation::Start => Action::Write(vec![1]),
                    _ => Action::Decide(1),
                }
            }
            fn boxed_clone(&self) -> Box<dyn Protocol> {
                Box::new(self.clone())
            }
        }
        let mut exec = Executor::new(
            vec![Box::new(One) as Box<dyn Protocol>, Box::new(One)],
            vec![],
        );
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(2), 100)
            .unwrap();
        let text = render_history(&outcome.history);
        assert_eq!(text.lines().count(), outcome.steps);
        let summary = render_outcome(&outcome);
        assert!(summary.contains("p1: decided 1"));
        assert!(summary.contains("4 steps total"));
    }
}
