//! Oracle task objects for enriched models `ASM_{n,t}[T]` (Section 5–6).
//!
//! The paper's reductions ("solve T₂ given any solution to T₁") are stated
//! relative to a black-box object solving T₁. An [`Oracle`] is the
//! canonical such black box: a sequentially-specified one-shot object whose
//! invocations are atomic simulator steps. [`GsbOracle`] implements *any*
//! feasible GSB task online (never painting itself into a corner), with
//! pluggable reply policies including a seeded-adversarial one;
//! [`TestAndSetOracle`] and [`ConsensusOracle`] cover the adaptive objects
//! the paper contrasts GSB tasks with.

use gsb_core::GsbSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{Error, Result};
use crate::process::Pid;

/// A one-shot shared object invoked atomically by processes.
///
/// Invocations happen at simulator-step granularity, so the object's
/// sequential specification is trivially respected; what an oracle models
/// is a *linearizable implementation* of its task.
pub trait Oracle: std::fmt::Debug + Send {
    /// Process `pid` invokes the object with argument `input` (meaning is
    /// object-specific; GSB oracles ignore it) and receives a reply.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OracleViolation`] if the invocation breaks the
    /// object's usage contract (e.g. a second invocation by the same
    /// process on a one-shot object).
    fn invoke(&mut self, pid: Pid, input: u64) -> Result<u64>;

    /// A short human-readable name for traces.
    fn name(&self) -> &str;

    /// Clones the oracle with its current state (schedule enumeration
    /// replays runs from scratch, but tooling also snapshots executors).
    fn boxed_clone(&self) -> Box<dyn Oracle>;
}

impl Clone for Box<dyn Oracle> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Reply-selection policy for [`GsbOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OraclePolicy {
    /// Reply with the smallest legal value. Deterministic; e.g. for
    /// perfect renaming it assigns names in invocation order.
    FirstFit,
    /// Reply with the largest legal value. Deterministic; stresses
    /// different code paths than [`OraclePolicy::FirstFit`].
    LastFit,
    /// Reply with a uniformly random legal value, from a seeded generator
    /// — a randomized adversary over all legal oracle behaviours.
    Seeded(u64),
}

/// An oracle implementing an arbitrary feasible GSB task online.
///
/// The object replies to each invocation with a value that keeps the final
/// output vector completable: value `v` is *legal* for the `k`-th
/// invocation iff `counts[v] + 1 ≤ u_v` and the remaining `n − k`
/// invocations can still cover every outstanding lower bound.
///
/// # Examples
///
/// ```
/// use gsb_core::SymmetricGsb;
/// use gsb_memory::{GsbOracle, Oracle, OraclePolicy, Pid};
///
/// // A perfect-renaming object for 3 processes.
/// let spec = SymmetricGsb::perfect_renaming(3)?.to_spec();
/// let mut oracle = GsbOracle::new(spec, OraclePolicy::FirstFit)?;
/// let a = oracle.invoke(Pid::new(2), 0).unwrap();
/// let b = oracle.invoke(Pid::new(0), 0).unwrap();
/// let c = oracle.invoke(Pid::new(1), 0).unwrap();
/// let mut names = [a, b, c];
/// names.sort();
/// assert_eq!(names, [1, 2, 3]);
/// # Ok::<(), gsb_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct GsbOracle {
    spec: GsbSpec,
    policy: OraclePolicy,
    counts: Vec<usize>,
    invoked: Vec<bool>,
    replies: Vec<Option<usize>>,
    done: usize,
    rng: Option<StdRng>,
}

impl GsbOracle {
    /// Creates an oracle for `spec` with the given reply policy.
    ///
    /// # Errors
    ///
    /// Returns [`gsb_core::Error::Infeasible`] if the task has no legal
    /// output vector (converted into [`Error::InvalidConfig`]).
    pub fn new(spec: GsbSpec, policy: OraclePolicy) -> std::result::Result<Self, gsb_core::Error> {
        spec.require_feasible()?;
        let n = spec.n();
        let m = spec.m();
        let rng = match policy {
            OraclePolicy::Seeded(seed) => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Ok(GsbOracle {
            counts: vec![0; m],
            invoked: vec![false; n],
            replies: vec![None; n],
            done: 0,
            spec,
            policy,
            rng,
        })
    }

    /// The task this oracle implements.
    #[must_use]
    pub fn spec(&self) -> &GsbSpec {
        &self.spec
    }

    /// The replies handed out so far, indexed by process.
    #[must_use]
    pub fn replies(&self) -> &[Option<usize>] {
        &self.replies
    }

    fn legal_values(&self) -> Vec<usize> {
        let m = self.spec.m();
        let remaining_after = self.spec.n() - self.done - 1;
        (1..=m)
            .filter(|&v| {
                if self.counts[v - 1] + 1 > self.spec.upper(v) {
                    return false;
                }
                let deficit: usize = (1..=m)
                    .map(|w| {
                        let c = self.counts[w - 1] + usize::from(w == v);
                        self.spec.lower(w).saturating_sub(c)
                    })
                    .sum();
                deficit <= remaining_after
            })
            .collect()
    }
}

impl Oracle for GsbOracle {
    fn invoke(&mut self, pid: Pid, _input: u64) -> Result<u64> {
        let i = pid.index();
        if i >= self.invoked.len() {
            return Err(Error::OracleViolation {
                pid,
                reason: format!(
                    "process index out of range for {}-process oracle",
                    self.invoked.len()
                ),
            });
        }
        if self.invoked[i] {
            return Err(Error::OracleViolation {
                pid,
                reason: "one-shot GSB object invoked twice".into(),
            });
        }
        let legal = self.legal_values();
        debug_assert!(
            !legal.is_empty(),
            "feasible GSB oracle must always have a legal reply"
        );
        let v = match self.policy {
            OraclePolicy::FirstFit => legal[0],
            OraclePolicy::LastFit => *legal.last().expect("legal set non-empty"),
            OraclePolicy::Seeded(_) => {
                let rng = self.rng.as_mut().expect("seeded policy has an rng");
                legal[rng.gen_range(0..legal.len())]
            }
        };
        self.invoked[i] = true;
        self.replies[i] = Some(v);
        self.counts[v - 1] += 1;
        self.done += 1;
        Ok(v as u64)
    }

    fn name(&self) -> &str {
        "gsb-oracle"
    }

    fn boxed_clone(&self) -> Box<dyn Oracle> {
        Box::new(self.clone())
    }
}

/// The adaptive test&set object (Section 1): the first invoker receives 1,
/// every later invoker receives 2. Unlike the election GSB task its
/// guarantee ("at least one process outputs 1") holds in every execution,
/// even when fewer than `n` processes participate.
#[derive(Debug, Clone, Default)]
pub struct TestAndSetOracle {
    taken: bool,
}

impl TestAndSetOracle {
    /// Creates a fresh (unset) object.
    #[must_use]
    pub fn new() -> Self {
        TestAndSetOracle::default()
    }
}

impl Oracle for TestAndSetOracle {
    fn invoke(&mut self, _pid: Pid, _input: u64) -> Result<u64> {
        if self.taken {
            Ok(2)
        } else {
            self.taken = true;
            Ok(1)
        }
    }

    fn name(&self) -> &str {
        "test-and-set"
    }

    fn boxed_clone(&self) -> Box<dyn Oracle> {
        Box::new(self.clone())
    }
}

/// A one-shot consensus object: every invoker receives the first proposed
/// input.
#[derive(Debug, Clone, Default)]
pub struct ConsensusOracle {
    decided: Option<u64>,
}

impl ConsensusOracle {
    /// Creates an undecided consensus object.
    #[must_use]
    pub fn new() -> Self {
        ConsensusOracle::default()
    }
}

impl Oracle for ConsensusOracle {
    fn invoke(&mut self, _pid: Pid, input: u64) -> Result<u64> {
        Ok(*self.decided.get_or_insert(input))
    }

    fn name(&self) -> &str {
        "consensus"
    }

    fn boxed_clone(&self) -> Box<dyn Oracle> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_core::SymmetricGsb;

    fn pid(i: usize) -> Pid {
        Pid::new(i)
    }

    #[test]
    fn perfect_renaming_oracle_assigns_distinct_names() {
        for policy in [
            OraclePolicy::FirstFit,
            OraclePolicy::LastFit,
            OraclePolicy::Seeded(7),
        ] {
            let spec = SymmetricGsb::perfect_renaming(5).unwrap().to_spec();
            let mut o = GsbOracle::new(spec.clone(), policy).unwrap();
            let mut names: Vec<u64> = (0..5).map(|i| o.invoke(pid(i), 0).unwrap()).collect();
            names.sort_unstable();
            assert_eq!(names, [1, 2, 3, 4, 5], "{policy:?}");
        }
    }

    #[test]
    fn slot_oracle_covers_every_slot() {
        // ⟨n, k, 1, n⟩ with n = 6, k = 5 under the adversarial policy:
        // after all 6 invocations every slot 1..5 is hit.
        for seed in 0..50 {
            let spec = SymmetricGsb::slot(6, 5).unwrap().to_spec();
            let mut o = GsbOracle::new(spec.clone(), OraclePolicy::Seeded(seed)).unwrap();
            let replies: Vec<u64> = (0..6).map(|i| o.invoke(pid(i), 0).unwrap()).collect();
            let out = gsb_core::OutputVector::new(replies.iter().map(|&v| v as usize).collect());
            assert!(spec.is_legal_output(&out), "seed {seed}: {out}");
        }
    }

    #[test]
    fn gsb_oracle_always_produces_legal_outputs() {
        // Sweep several specs × seeds; the final vector must be legal.
        let specs = vec![
            SymmetricGsb::wsb(5).unwrap().to_spec(),
            SymmetricGsb::k_wsb(6, 3).unwrap().to_spec(),
            GsbSpec::election(4).unwrap(),
            GsbSpec::committees(5, &[(1, 2), (2, 3), (0, 1)]).unwrap(),
        ];
        for spec in specs {
            for seed in 0..30 {
                let n = spec.n();
                let mut o = GsbOracle::new(spec.clone(), OraclePolicy::Seeded(seed)).unwrap();
                let replies: Vec<usize> = (0..n)
                    .map(|i| o.invoke(pid(i), 0).unwrap() as usize)
                    .collect();
                let out = gsb_core::OutputVector::new(replies);
                assert!(spec.is_legal_output(&out), "{spec} seed {seed}: {out}");
            }
        }
    }

    #[test]
    fn oracle_rejects_double_invocation() {
        let spec = SymmetricGsb::wsb(3).unwrap().to_spec();
        let mut o = GsbOracle::new(spec, OraclePolicy::FirstFit).unwrap();
        o.invoke(pid(0), 0).unwrap();
        let err = o.invoke(pid(0), 0).unwrap_err();
        assert!(matches!(err, Error::OracleViolation { .. }));
    }

    #[test]
    fn oracle_rejects_infeasible_spec() {
        let spec = SymmetricGsb::renaming(5, 4).unwrap().to_spec();
        assert!(GsbOracle::new(spec, OraclePolicy::FirstFit).is_err());
    }

    #[test]
    fn test_and_set_elects_exactly_one() {
        let mut o = TestAndSetOracle::new();
        let replies: Vec<u64> = (0..4).map(|i| o.invoke(pid(i), 0).unwrap()).collect();
        assert_eq!(replies.iter().filter(|&&r| r == 1).count(), 1);
        assert_eq!(replies[0], 1, "first invoker wins");
    }

    #[test]
    fn consensus_returns_first_proposal() {
        let mut o = ConsensusOracle::new();
        assert_eq!(o.invoke(pid(2), 42).unwrap(), 42);
        assert_eq!(o.invoke(pid(0), 7).unwrap(), 42);
        assert_eq!(o.invoke(pid(1), 9).unwrap(), 42);
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut o = TestAndSetOracle::new();
        o.invoke(pid(0), 0).unwrap();
        let mut copy: Box<dyn Oracle> = o.boxed_clone();
        assert_eq!(copy.invoke(pid(1), 0).unwrap(), 2);
    }
}
