//! Error types for the `gsb-memory` crate.

use std::fmt;

use crate::process::Pid;

/// A specialized [`Result`](std::result::Result) type for `gsb-memory`
/// operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by fallible simulation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A run exceeded its step budget without every live process deciding —
    /// the simulator's proxy for a non-wait-free execution.
    StepLimitExceeded {
        /// The configured budget.
        limit: usize,
        /// Processes that had not decided when the budget ran out.
        undecided: Vec<Pid>,
    },
    /// A protocol issued an operation that the executor cannot satisfy
    /// (e.g. reading a register index out of range, invoking a missing
    /// oracle, or acting after deciding).
    ProtocolViolation {
        /// The offending process.
        pid: Pid,
        /// Human-readable description.
        reason: String,
    },
    /// An oracle object rejected an invocation (e.g. a one-shot object
    /// invoked twice by the same process).
    OracleViolation {
        /// The offending process.
        pid: Pid,
        /// Human-readable description.
        reason: String,
    },
    /// Simulation configuration is malformed (e.g. zero processes, or a
    /// crash plan referring to an unknown process).
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::StepLimitExceeded { limit, undecided } => write!(
                f,
                "step limit {limit} exceeded with {} undecided process(es): {undecided:?}",
                undecided.len()
            ),
            Error::ProtocolViolation { pid, reason } => {
                write!(f, "protocol violation by {pid}: {reason}")
            }
            Error::OracleViolation { pid, reason } => {
                write!(f, "oracle violation by {pid}: {reason}")
            }
            Error::InvalidConfig { reason } => write!(f, "invalid simulation config: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = Error::StepLimitExceeded {
            limit: 100,
            undecided: vec![Pid::new(0), Pid::new(2)],
        };
        let text = err.to_string();
        assert!(text.contains("100"));
        assert!(text.contains("2 undecided"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
