//! Wait-free atomic snapshot built **from** single-cell reads
//! (Afek–Attiya–Dolev–Gafni–Merritt–Shavit, the paper's reference \[1\]).
//!
//! The model of Section 2.1 equips processes with a `READ` returning an
//! atomic snapshot of the whole array, justified by a footnote: snapshots
//! are implementable from 1WnR registers even with `t = n − 1`. This
//! module *demonstrates* that implementability inside the simulator:
//!
//! * every register holds a [`SnapshotCell`] — `(data, seq, view)` where
//!   `view` is the writer's last scan (the *embedded scan*);
//! * [`ScanMachine`] performs repeated collects; two identical consecutive
//!   collects give a *clean* double collect, and a process observed to
//!   move twice lets the scanner *borrow* its embedded view;
//! * [`UpdateMachine`] scans, then writes `(data, seq+1, view)`.
//!
//! Both are sub-state machines usable from any [`Protocol`]
//! (one [`Action`] at a time), and
//! [`check_embedded_scan_linearizability`] validates — against the
//! register write log — that every embedded scan equals the memory state
//! at some instant within the scan's interval, i.e. that scans are
//! linearizable (experiment E9).

use crate::history::{EventKind, History};
use crate::process::Pid;
use crate::register::{RegisterArray, Value, Word};
use crate::sim::{Action, Observation, Protocol};

/// The content of one register under the AADGMS protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCell {
    /// The application data last written.
    pub data: Word,
    /// Writer's write counter (starts at 1).
    pub seq: Word,
    /// The writer's embedded scan: the data fields it observed.
    pub view: Vec<Option<Word>>,
}

impl SnapshotCell {
    /// Serializes to a register [`Value`].
    #[must_use]
    pub fn encode(&self) -> Value {
        let mut v = Vec::with_capacity(3 + 2 * self.view.len());
        v.push(self.seq);
        v.push(self.data);
        v.push(self.view.len() as Word);
        for entry in &self.view {
            match entry {
                Some(x) => {
                    v.push(1);
                    v.push(*x);
                }
                None => {
                    v.push(0);
                    v.push(0);
                }
            }
        }
        v
    }

    /// Deserializes from a register [`Value`].
    ///
    /// Returns `None` on malformed input.
    #[must_use]
    pub fn decode(value: &[Word]) -> Option<Self> {
        let (&seq, rest) = value.split_first()?;
        let (&data, rest) = rest.split_first()?;
        let (&len, rest) = rest.split_first()?;
        let len = len as usize;
        if rest.len() != 2 * len {
            return None;
        }
        let view = rest
            .chunks_exact(2)
            .map(|c| if c[0] == 1 { Some(c[1]) } else { None })
            .collect();
        Some(SnapshotCell { data, seq, view })
    }
}

/// What a scan sub-machine wants next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanStep {
    /// Read register `j` (issue [`Action::ReadCell`] and feed the result
    /// back via [`ScanMachine::absorb`]).
    Read(usize),
    /// The scan is complete with this view of the data fields.
    Done(Vec<Option<Word>>),
}

/// The AADGMS scanner: collects all cells repeatedly until a clean double
/// collect or a twice-moved process provides an embedded view.
///
/// Wait-free: at most `n + 2` collects, i.e. `O(n²)` reads.
#[derive(Debug, Clone)]
pub struct ScanMachine {
    n: usize,
    cursor: usize,
    current: Vec<Option<SnapshotCell>>,
    previous: Option<Vec<Option<SnapshotCell>>>,
    /// Per-process count of observed moves (seq changes between
    /// consecutive collects).
    moved: Vec<usize>,
    collects_done: usize,
}

impl ScanMachine {
    /// Starts a scan over `n` cells.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ScanMachine {
            n,
            cursor: 0,
            current: vec![None; n],
            previous: None,
            moved: vec![0; n],
            collects_done: 0,
        }
    }

    /// First action of the scan.
    #[must_use]
    pub fn start(&self) -> ScanStep {
        ScanStep::Read(0)
    }

    /// Feeds the value read for the previously requested cell; returns the
    /// next step.
    ///
    /// # Panics
    ///
    /// Panics if a register holds a value that is not a valid
    /// [`SnapshotCell`] encoding (foreign writers corrupting the array).
    pub fn absorb(&mut self, value: Option<Value>) -> ScanStep {
        let cell = value.map(|v| {
            SnapshotCell::decode(&v).expect("register holds a valid snapshot cell encoding")
        });
        self.current[self.cursor] = cell;
        self.cursor += 1;
        if self.cursor < self.n {
            return ScanStep::Read(self.cursor);
        }
        // A full collect just completed.
        self.collects_done += 1;
        if let Some(prev) = &self.previous {
            let mut clean = true;
            #[allow(clippy::needless_range_loop)] // parallel indexing into 3 arrays
            for j in 0..self.n {
                let seq_prev = prev[j].as_ref().map(|c| c.seq).unwrap_or(0);
                let seq_cur = self.current[j].as_ref().map(|c| c.seq).unwrap_or(0);
                if seq_prev != seq_cur {
                    clean = false;
                    self.moved[j] += 1;
                    if self.moved[j] >= 2 {
                        // Borrow the embedded view of the twice-moved
                        // writer: its last write began after our scan did.
                        let view = self.current[j]
                            .as_ref()
                            .expect("a moved process has written")
                            .view
                            .clone();
                        return ScanStep::Done(view);
                    }
                }
            }
            if clean {
                let view = self
                    .current
                    .iter()
                    .map(|c| c.as_ref().map(|cell| cell.data))
                    .collect();
                return ScanStep::Done(view);
            }
        }
        self.previous = Some(self.current.clone());
        self.cursor = 0;
        ScanStep::Read(0)
    }

    /// Number of completed collects so far (for step-complexity benches).
    #[must_use]
    pub fn collects_done(&self) -> usize {
        self.collects_done
    }
}

/// What an update sub-machine wants next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateStep {
    /// Read register `j` (the embedded scan in progress).
    Read(usize),
    /// Write this encoded cell to the process's own register.
    Write(Value),
    /// The update completed (after the write's acknowledgement).
    Done,
}

/// The AADGMS updater: embedded scan, then write `(data, seq+1, view)`.
#[derive(Debug, Clone)]
pub struct UpdateMachine {
    data: Word,
    seq: Word,
    scan: ScanMachine,
    wrote: bool,
}

impl UpdateMachine {
    /// Starts an update writing `data`; `seq` must be the writer's next
    /// sequence number (1 for the first update) over `n` cells.
    #[must_use]
    pub fn new(n: usize, data: Word, seq: Word) -> Self {
        UpdateMachine {
            data,
            seq,
            scan: ScanMachine::new(n),
            wrote: false,
        }
    }

    /// First action of the update.
    #[must_use]
    pub fn start(&self) -> UpdateStep {
        match self.scan.start() {
            ScanStep::Read(j) => UpdateStep::Read(j),
            ScanStep::Done(_) => unreachable!("fresh scans always read"),
        }
    }

    /// Feeds the observation of the previous step.
    ///
    /// Pass `Some(value)` after a read, `None` after the write completed.
    pub fn absorb(&mut self, read_value: Option<Option<Value>>) -> UpdateStep {
        if self.wrote {
            return UpdateStep::Done;
        }
        match read_value {
            Some(value) => match self.scan.absorb(value) {
                ScanStep::Read(j) => UpdateStep::Read(j),
                ScanStep::Done(view) => {
                    self.wrote = true;
                    let cell = SnapshotCell {
                        data: self.data,
                        seq: self.seq,
                        view,
                    };
                    UpdateStep::Write(cell.encode())
                }
            },
            None => UpdateStep::Done,
        }
    }
}

/// A demonstration protocol: performs `rounds` updates (writing
/// `id · 1000 + round`), then one final scan, then decides the number of
/// processes it saw in the final scan. Exists to generate rich histories
/// for the linearizability checker and to benchmark scan complexity.
#[derive(Debug, Clone)]
pub struct SnapshotStressProtocol {
    id: Word,
    n: usize,
    rounds: usize,
    round: usize,
    seq: Word,
    phase: StressPhase,
}

#[derive(Debug, Clone)]
enum StressPhase {
    Updating(UpdateMachine),
    FinalScan(ScanMachine),
    Idle,
}

impl SnapshotStressProtocol {
    /// Creates the protocol for a process with identity `id` in an
    /// `n`-process system, performing `rounds` updates.
    #[must_use]
    pub fn new(id: Word, n: usize, rounds: usize) -> Self {
        SnapshotStressProtocol {
            id,
            n,
            rounds,
            round: 0,
            seq: 0,
            phase: StressPhase::Idle,
        }
    }

    fn begin_round(&mut self) -> Action {
        if self.round < self.rounds {
            self.round += 1;
            self.seq += 1;
            let update = UpdateMachine::new(self.n, self.id * 1000 + self.round as Word, self.seq);
            let first = update.start();
            self.phase = StressPhase::Updating(update);
            match first {
                UpdateStep::Read(j) => Action::ReadCell(j),
                _ => unreachable!("updates begin by reading"),
            }
        } else {
            let scan = ScanMachine::new(self.n);
            let first = scan.start();
            self.phase = StressPhase::FinalScan(scan);
            match first {
                ScanStep::Read(j) => Action::ReadCell(j),
                ScanStep::Done(_) => unreachable!("fresh scans always read"),
            }
        }
    }
}

impl Protocol for SnapshotStressProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        match (&mut self.phase, observation) {
            (StressPhase::Idle, Observation::Start) => self.begin_round(),
            (StressPhase::Updating(update), Observation::CellValue(v)) => {
                match update.absorb(Some(v)) {
                    UpdateStep::Read(j) => Action::ReadCell(j),
                    UpdateStep::Write(value) => Action::Write(value),
                    UpdateStep::Done => unreachable!("done only after a write"),
                }
            }
            (StressPhase::Updating(_), Observation::Written) => self.begin_round(),
            (StressPhase::FinalScan(scan), Observation::CellValue(v)) => match scan.absorb(v) {
                ScanStep::Read(j) => Action::ReadCell(j),
                ScanStep::Done(view) => Action::Decide(view.iter().flatten().count()),
            },
            (phase, obs) => unreachable!("unexpected observation {obs:?} in phase {phase:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// Validates every *embedded* scan of a history: for each write of a
/// [`SnapshotCell`], the embedded view must equal the data-projection of
/// the register array at some logical time within the scan's interval
/// (from the scan's first read to the write). This is the linearizability
/// of AADGMS scans, checked against ground truth.
///
/// # Errors
///
/// Returns a description of the first non-linearizable scan found.
pub fn check_embedded_scan_linearizability(
    history: &History,
    registers: &RegisterArray,
    n: usize,
) -> std::result::Result<(), String> {
    for pid_index in 0..n {
        let pid = Pid::new(pid_index);
        let mut scan_start_version: Option<u64> = None;
        let mut last_read_version: u64 = 0;
        for event in history.by_pid(pid) {
            match &event.kind {
                EventKind::ReadCell { .. } => {
                    scan_start_version.get_or_insert(event.version);
                    last_read_version = event.version;
                }
                EventKind::Write(value) => {
                    let cell = SnapshotCell::decode(value)
                        .ok_or_else(|| format!("{pid}: wrote a non-cell value"))?;
                    let lo = scan_start_version.take().unwrap_or(0);
                    let hi = last_read_version;
                    if !view_matches_some_state(&cell.view, registers, lo, hi) {
                        return Err(format!(
                            "{pid}: embedded view {:?} matches no memory state in \
                             versions [{lo}, {hi}]",
                            cell.view
                        ));
                    }
                }
                _ => {
                    scan_start_version = None;
                }
            }
        }
    }
    Ok(())
}

fn view_matches_some_state(
    view: &[Option<Word>],
    registers: &RegisterArray,
    lo: u64,
    hi: u64,
) -> bool {
    (lo..=hi).any(|v| {
        let state = registers.state_at(v);
        state.len() == view.len()
            && state.iter().zip(view).all(|(cell, expected)| {
                let data = cell
                    .as_ref()
                    .and_then(|value| SnapshotCell::decode(value))
                    .map(|c| c.data);
                data == *expected
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AdversarialScheduler, RoundRobinScheduler, SeededScheduler};
    use crate::sim::{CrashPlan, Executor};

    fn stress_executor(n: usize, rounds: usize) -> Executor {
        let protocols = (0..n)
            .map(|i| {
                Box::new(SnapshotStressProtocol::new(i as Word + 1, n, rounds)) as Box<dyn Protocol>
            })
            .collect();
        Executor::new(protocols, vec![])
    }

    #[test]
    fn cell_encoding_round_trips() {
        let cell = SnapshotCell {
            data: 42,
            seq: 7,
            view: vec![Some(1), None, Some(3)],
        };
        assert_eq!(SnapshotCell::decode(&cell.encode()), Some(cell.clone()));
        assert_eq!(SnapshotCell::decode(&[1, 2]), None);
    }

    #[test]
    fn solo_scan_sees_own_writes() {
        let mut exec = stress_executor(1, 2);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(1), 1000)
            .unwrap();
        assert_eq!(outcome.decisions, vec![Some(1)]);
    }

    #[test]
    fn scans_linearizable_under_round_robin() {
        let mut exec = stress_executor(3, 2);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(3), 10_000)
            .unwrap();
        check_embedded_scan_linearizability(&outcome.history, exec.registers(), 3)
            .expect("scans must be linearizable");
        assert!(outcome.is_complete());
    }

    #[test]
    fn scans_linearizable_under_random_schedules() {
        for seed in 0..40 {
            let mut exec = stress_executor(4, 2);
            let outcome = exec
                .run(
                    &mut SeededScheduler::new(seed),
                    &CrashPlan::none(4),
                    100_000,
                )
                .unwrap();
            check_embedded_scan_linearizability(&outcome.history, exec.registers(), 4)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn scans_linearizable_under_adversarial_schedules_with_crashes() {
        for seed in 0..20 {
            let mut exec = stress_executor(4, 2);
            let plan = CrashPlan::with_crashes(4, &[(Pid::new(seed as usize % 4), 5)]);
            let outcome = exec
                .run(&mut AdversarialScheduler::new(seed, 12), &plan, 100_000)
                .unwrap();
            check_embedded_scan_linearizability(&outcome.history, exec.registers(), 4)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Live processes must have decided despite the crash.
            assert_eq!(
                outcome.decisions.iter().filter(|d| d.is_some()).count(),
                3,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn scan_is_wait_free_bounded_collects() {
        // The scanner returns within n + 2 collects in every run.
        for seed in 0..20 {
            let mut exec = stress_executor(4, 3);
            let outcome = exec
                .run(
                    &mut SeededScheduler::new(seed),
                    &CrashPlan::none(4),
                    100_000,
                )
                .unwrap();
            // 4 processes × (3 updates + final scan), each scan ≤ (n+2)·n
            // reads plus one write: generous bound check via total steps.
            let max_steps_per_proc = (3 + 1) * ((4 + 2) * 4 + 1) + 1;
            assert!(
                outcome.steps <= 4 * max_steps_per_proc,
                "seed {seed}: {} steps exceeds wait-free bound",
                outcome.steps
            );
        }
    }

    #[test]
    fn exhaustive_two_process_linearizability() {
        // Schedules of a 2-process, 1-round stress run; the full tree has
        // millions of leaves, so cap the sweep (DFS order still covers
        // maximally skewed prefixes first).
        use crate::enumerate::enumerate_schedules;
        let exec = stress_executor(2, 1);
        let mut checked = 0usize;
        enumerate_schedules(&exec, 10_000, &mut |_| true, &mut |outcome| {
            checked += 1;
            assert!(outcome.is_complete());
            checked < 5_000
        })
        .unwrap();
        assert!(checked > 10, "expected many schedules, got {checked}");
    }
}
