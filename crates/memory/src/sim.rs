//! The step-level wait-free simulator (the model of Section 2).
//!
//! A [`Protocol`] is a per-process state machine that emits one
//! shared-memory [`Action`] at a time and receives an [`Observation`] in
//! return; the [`Executor`] interleaves `n` such machines under a pluggable
//! [`Scheduler`](crate::scheduler::Scheduler#) with an optional
//! [`CrashPlan`]. One scheduler tick = one atomic operation, so registers
//! and oracle objects are linearizable by construction, and quantifying
//! over schedules quantifies over the model's runs.
//!
//! The paper's two algorithmic hygiene conditions are checkable
//! dynamically:
//!
//! * **index-independence** (decisions don't depend on register indexes) —
//!   [`replay_index_permuted`];
//! * **comparison-based** (decisions depend only on the relative order of
//!   identities) — [`replay_order_isomorphic`].

use gsb_core::{GsbSpec, Identity, OutputVector};

use crate::error::{Error, Result};
use crate::history::{Event, EventKind, History};
use crate::oracle::Oracle;
use crate::process::{Pid, ProcessStatus};
use crate::register::{RegisterArray, Value};
use crate::scheduler::{FixedScheduler, Scheduler};

/// A single shared-memory operation requested by a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Action {
    /// Write a value to the process's own register `A[i]`.
    Write(Value),
    /// Read one register `A[j]`.
    ReadCell(usize),
    /// Atomically read the whole array (the model's `READ`).
    Snapshot,
    /// Invoke oracle object `object` with argument `input`.
    Oracle {
        /// Index into the executor's oracle table.
        object: usize,
        /// Invocation argument.
        input: u64,
    },
    /// Decide: write the write-once output register and stop.
    Decide(usize),
}

/// What a protocol observes when activated: the result of its previous
/// action.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Observation {
    /// First activation; no previous action.
    Start,
    /// The previous write completed.
    Written,
    /// Result of [`Action::ReadCell`].
    CellValue(Option<Value>),
    /// Result of [`Action::Snapshot`]: one entry per register.
    Snapshot(Vec<Option<Value>>),
    /// Result of [`Action::Oracle`].
    OracleReply(u64),
}

/// A per-process distributed algorithm, driven one atomic step at a time.
///
/// Implementations are state machines: `next_action` is called when the
/// scheduler picks the process, receives the [`Observation`] produced by
/// the process's previous action, and returns the next action. After
/// returning [`Action::Decide`] the protocol is never activated again.
///
/// `Sync` is required so the exhaustive enumerator can share un-forked
/// machines between executor forks (copy-on-write); protocols are plain
/// state machines mutated only through `&mut self`, so the bound is
/// vacuous in practice.
pub trait Protocol: std::fmt::Debug + Send + Sync {
    /// Produces the next shared-memory operation.
    fn next_action(&mut self, observation: Observation) -> Action;

    /// Clones the machine with its current state (the exhaustive schedule
    /// enumerator forks executors at branch points).
    fn boxed_clone(&self) -> Box<dyn Protocol>;

    /// Optional stable fingerprint of the machine's *current* state.
    ///
    /// Two machines of the same algorithm whose fingerprints are equal
    /// must behave identically on every future observation sequence. When
    /// every process of an executor provides a fingerprint, the memoized
    /// enumerator
    /// ([`enumerate_decisions_memoized`](crate::enumerate::enumerate_decisions_memoized))
    /// merges executor states reached along different schedules instead of
    /// re-exploring them. The default `None` opts out of state
    /// memoization (prefix-level symmetry pruning still applies).
    fn state_key(&self) -> Option<Vec<u64>> {
        None
    }
}

impl Clone for Box<dyn Protocol> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// When each process crashes, if ever.
///
/// `crash_after[i] = Some(k)` crashes process `i` once it has taken `k`
/// steps (`Some(0)` = never participates, the paper's non-participating
/// faulty process).
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    crash_after: Vec<Option<usize>>,
}

impl CrashPlan {
    /// No crashes at all.
    #[must_use]
    pub fn none(n: usize) -> Self {
        CrashPlan {
            crash_after: vec![None; n],
        }
    }

    /// Crashes the listed processes after the given step counts.
    #[must_use]
    pub fn with_crashes(n: usize, crashes: &[(Pid, usize)]) -> Self {
        let mut plan = CrashPlan::none(n);
        for &(pid, after) in crashes {
            plan.crash_after[pid.index()] = Some(after);
        }
        plan
    }

    /// Crash threshold for `pid`.
    #[must_use]
    pub fn crash_after(&self, pid: Pid) -> Option<usize> {
        self.crash_after.get(pid.index()).copied().flatten()
    }

    /// Number of processes that crash under this plan.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.crash_after.iter().filter(|c| c.is_some()).count()
    }
}

/// The result of a simulated run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-process decision (`None` = crashed before deciding).
    pub decisions: Vec<Option<usize>>,
    /// Final status of each process.
    pub statuses: Vec<ProcessStatus>,
    /// Total steps executed.
    pub steps: usize,
    /// The event log.
    pub history: History,
}

impl RunOutcome {
    /// The full output vector, if every process decided.
    #[must_use]
    pub fn output_vector(&self) -> Option<OutputVector> {
        OutputVector::from_decisions(&self.decisions).ok()
    }

    /// Whether every process decided (crash-free complete run).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.decisions.iter().all(Option::is_some)
    }

    /// The decided values of the processes that did decide.
    #[must_use]
    pub fn decided_values(&self) -> Vec<usize> {
        self.decisions.iter().flatten().copied().collect()
    }

    /// Task-correctness check that also covers crashed runs: decided
    /// values must be *completable* to a legal output vector of `spec`
    /// (for complete runs this is exactly legality).
    ///
    /// Completability is the right partial-run condition because the
    /// paper's validity quantifies over crash-free extensions of the
    /// decision prefix (Definition 1).
    #[must_use]
    pub fn satisfies(&self, spec: &GsbSpec) -> bool {
        partial_decisions_completable(spec, &self.decisions)
    }
}

/// Fallible conversion into the decided output vector: the evidence
/// accessor the engine crate uses when replaying witnesses through the
/// simulator (unlike [`RunOutcome::output_vector`], the *reason* an
/// incomplete run cannot be converted is preserved in the error).
impl TryFrom<&RunOutcome> for OutputVector {
    type Error = gsb_core::Error;

    fn try_from(outcome: &RunOutcome) -> std::result::Result<OutputVector, gsb_core::Error> {
        OutputVector::from_decisions(&outcome.decisions)
    }
}

/// Whether partially-decided values can be extended to a legal output of
/// `spec` by assigning values to the undecided processes.
#[must_use]
pub fn partial_decisions_completable(spec: &GsbSpec, decisions: &[Option<usize>]) -> bool {
    if decisions.len() != spec.n() {
        return false;
    }
    let m = spec.m();
    let mut counts = vec![0usize; m];
    let mut undecided = 0usize;
    for d in decisions {
        match d {
            Some(v) if *v >= 1 && *v <= m => counts[*v - 1] += 1,
            Some(_) => return false,
            None => undecided += 1,
        }
    }
    let mut deficit = 0usize;
    let mut capacity = 0usize;
    for v in 1..=m {
        let c = counts[v - 1];
        if c > spec.upper(v) {
            return false;
        }
        deficit += spec.lower(v).saturating_sub(c);
        capacity += spec.upper(v) - c;
    }
    deficit <= undecided && undecided <= capacity
}

/// The wait-free shared-memory machine: registers, oracles, and `n`
/// protocol instances.
///
/// # Examples
///
/// ```
/// use gsb_memory::{Action, CrashPlan, Executor, Observation, Protocol,
///                  RoundRobinScheduler};
///
/// /// A protocol that writes its id then decides 1.
/// #[derive(Debug, Clone)]
/// struct WriteThenDecide(u64);
///
/// impl Protocol for WriteThenDecide {
///     fn next_action(&mut self, obs: Observation) -> Action {
///         match obs {
///             Observation::Start => Action::Write(vec![self.0]),
///             _ => Action::Decide(1),
///         }
///     }
///     fn boxed_clone(&self) -> Box<dyn Protocol> {
///         Box::new(self.clone())
///     }
/// }
///
/// let protocols: Vec<Box<dyn Protocol>> =
///     (0..3).map(|i| Box::new(WriteThenDecide(i)) as Box<dyn Protocol>).collect();
/// let mut exec = Executor::new(protocols, vec![]);
/// let outcome = exec
///     .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(3), 100)
///     .unwrap();
/// assert!(outcome.is_complete());
/// assert_eq!(outcome.decisions, vec![Some(1), Some(1), Some(1)]);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    n: usize,
    registers: RegisterArray,
    oracles: Vec<Box<dyn Oracle>>,
    /// Machines are behind `Arc` so that forking the executor (which the
    /// exhaustive enumerator does at every branch point) is
    /// copy-on-write: only the machine that actually takes a step in a
    /// fork is deep-cloned, the other `n − 1` stay shared.
    protocols: Vec<std::sync::Arc<dyn Protocol>>,
    statuses: Vec<ProcessStatus>,
    pending: Vec<Observation>,
    decisions: Vec<Option<usize>>,
    steps_taken: Vec<usize>,
    steps: usize,
    history: History,
    /// When `false`, the event history is not recorded (the enumerator's
    /// lean mode: decision vectors only, O(1) forks).
    instrumented: bool,
}

impl Executor {
    /// Creates an executor for the given protocol instances (one per
    /// process) and shared oracle objects.
    ///
    /// # Panics
    ///
    /// Panics if `protocols` is empty.
    #[must_use]
    pub fn new(protocols: Vec<Box<dyn Protocol>>, oracles: Vec<Box<dyn Oracle>>) -> Self {
        let n = protocols.len();
        assert!(n > 0, "need at least one process");
        Executor {
            n,
            registers: RegisterArray::new(n),
            oracles,
            protocols: protocols.into_iter().map(std::sync::Arc::from).collect(),
            statuses: vec![ProcessStatus::Running; n],
            pending: vec![Observation::Start; n],
            decisions: vec![None; n],
            steps_taken: vec![0; n],
            steps: 0,
            history: History::new(),
            instrumented: true,
        }
    }

    /// Switches event-history recording and the register write log on or
    /// off. The enumerator's memoized fast path turns both off (*lean
    /// mode*): outcomes then carry decisions and statuses but an empty
    /// [`History`], and forking stops paying O(depth) per clone.
    pub fn set_instrumentation(&mut self, on: bool) {
        self.instrumented = on;
        self.registers.set_logging(on);
    }

    /// Number of steps process `pid` has taken so far.
    #[must_use]
    pub fn steps_taken(&self, pid: Pid) -> usize {
        self.steps_taken[pid.index()]
    }

    /// Number of installed oracle objects. Oracle hidden state is not
    /// observable, so the enumerator's symmetry reductions switch off
    /// when this is non-zero.
    #[must_use]
    pub fn oracle_count(&self) -> usize {
        self.oracles.len()
    }

    /// The per-process decisions so far (`None` = not yet decided).
    #[must_use]
    pub fn decisions(&self) -> &[Option<usize>] {
        &self.decisions
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Processes currently schedulable.
    #[must_use]
    pub fn active(&self) -> Vec<Pid> {
        (0..self.n)
            .filter(|&i| self.statuses[i].is_active())
            .map(Pid::new)
            .collect()
    }

    /// Whether the run is over (no active processes remain).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.statuses.iter().all(|s| !s.is_active())
    }

    /// Executes one step by process `pid`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProtocolViolation`] for malformed actions and
    /// propagates oracle errors.
    pub fn step(&mut self, pid: Pid) -> Result<()> {
        let i = pid.index();
        if i >= self.n || !self.statuses[i].is_active() {
            return Err(Error::ProtocolViolation {
                pid,
                reason: "stepping an inactive or unknown process".into(),
            });
        }
        let observation = std::mem::replace(&mut self.pending[i], Observation::Start);
        let action = {
            // Copy-on-write: clone the machine only if this executor shares
            // it with a fork.
            let slot = &mut self.protocols[i];
            if std::sync::Arc::get_mut(slot).is_none() {
                *slot = std::sync::Arc::from(slot.boxed_clone());
            }
            std::sync::Arc::get_mut(slot)
                .expect("machine is unique after copy-on-write")
                .next_action(observation)
        };
        let kind = match action {
            Action::Write(value) => {
                let kind = if self.instrumented {
                    Some(EventKind::Write(value.clone()))
                } else {
                    None
                };
                self.registers.write(pid, value);
                self.pending[i] = Observation::Written;
                kind
            }
            Action::ReadCell(j) => {
                if j >= self.n {
                    return Err(Error::ProtocolViolation {
                        pid,
                        reason: format!("read of register {j} out of range"),
                    });
                }
                let value = self.registers.read(j).cloned();
                let kind = self.instrumented.then(|| EventKind::ReadCell {
                    cell: j,
                    value: value.clone(),
                });
                self.pending[i] = Observation::CellValue(value);
                kind
            }
            Action::Snapshot => {
                let snap = self.registers.snapshot();
                self.pending[i] = Observation::Snapshot(snap);
                self.instrumented.then_some(EventKind::Snapshot)
            }
            Action::Oracle { object, input } => {
                let oracle =
                    self.oracles
                        .get_mut(object)
                        .ok_or_else(|| Error::ProtocolViolation {
                            pid,
                            reason: format!("no oracle object {object}"),
                        })?;
                let reply = oracle.invoke(pid, input)?;
                self.pending[i] = Observation::OracleReply(reply);
                self.instrumented.then_some(EventKind::OracleCall {
                    object,
                    input,
                    reply,
                })
            }
            Action::Decide(v) => {
                self.decisions[i] = Some(v);
                self.statuses[i] = ProcessStatus::Decided;
                self.instrumented.then_some(EventKind::Decide(v))
            }
        };
        if let Some(kind) = kind {
            self.history.record(Event {
                step: self.steps,
                pid,
                kind,
                version: self.registers.version(),
            });
        }
        self.steps += 1;
        self.steps_taken[i] += 1;
        Ok(())
    }

    /// Marks a process crashed (no further steps).
    pub fn crash(&mut self, pid: Pid) {
        let i = pid.index();
        if self.statuses[i].is_active() {
            self.statuses[i] = ProcessStatus::Crashed;
            if self.instrumented {
                self.history.record(Event {
                    step: self.steps,
                    pid,
                    kind: EventKind::Crash,
                    version: self.registers.version(),
                });
            }
        }
    }

    /// Serializes the executor's behavioural state under a process
    /// relabeling `perm` (process `i` becomes `perm[i]`), for the
    /// enumerator's canonical-state memo table.
    ///
    /// Returns `None` when the state is not fingerprintable: some machine
    /// declines [`Protocol::state_key`], or oracle objects are installed
    /// (their hidden state is not observable).
    ///
    /// The encoding covers everything that determines future behaviour —
    /// machine fingerprints, pending observations (with positional
    /// snapshot views relabeled), statuses, decisions, and register
    /// contents — and deliberately excludes instrumentation (history,
    /// write log, step counters).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    #[must_use]
    pub fn state_key_permuted(&self, perm: &[usize]) -> Option<Vec<u64>> {
        assert_eq!(perm.len(), self.n, "permutation arity mismatch");
        if !self.oracles.is_empty() {
            return None;
        }
        // inv[j] = the original index relabeled to position j.
        let mut inv = vec![usize::MAX; self.n];
        for (i, &j) in perm.iter().enumerate() {
            assert!(j < self.n && inv[j] == usize::MAX, "not a permutation");
            inv[j] = i;
        }
        let mut key = Vec::with_capacity(self.n * 8);
        let encode_value = |key: &mut Vec<u64>, value: Option<&crate::register::Value>| match value
        {
            None => key.push(0),
            Some(v) => {
                key.push(1 + v.len() as u64);
                key.extend_from_slice(v);
            }
        };
        for &i in &inv {
            let machine = self.protocols[i].state_key()?;
            key.push(machine.len() as u64);
            key.extend_from_slice(&machine);
            key.push(match self.statuses[i] {
                ProcessStatus::Running => 0,
                ProcessStatus::Decided => 1,
                ProcessStatus::Crashed => 2,
            });
            key.push(self.decisions[i].map_or(0, |d| d as u64 + 1));
            match &self.pending[i] {
                Observation::Start => key.push(0),
                Observation::Written => key.push(1),
                Observation::CellValue(v) => {
                    key.push(2);
                    encode_value(&mut key, v.as_ref());
                }
                Observation::Snapshot(view) => {
                    key.push(3);
                    // The view is positional: relabel its cells too.
                    for &c in &inv {
                        encode_value(&mut key, view[c].as_ref());
                    }
                }
                Observation::OracleReply(r) => {
                    key.push(4);
                    key.push(*r);
                }
            }
        }
        for &i in &inv {
            encode_value(&mut key, self.registers.read(i));
        }
        Some(key)
    }

    /// Runs to completion under `scheduler` and `crash_plan`, with a step
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StepLimitExceeded`] if live undecided processes
    /// remain after `step_limit` steps (evidence of non-termination),
    /// [`Error::InvalidConfig`] for a malformed crash plan, and propagates
    /// protocol/oracle violations.
    pub fn run(
        &mut self,
        scheduler: &mut dyn Scheduler,
        crash_plan: &CrashPlan,
        step_limit: usize,
    ) -> Result<RunOutcome> {
        if crash_plan.crash_after.len() != self.n && !crash_plan.crash_after.is_empty() {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "crash plan covers {} processes, executor has {}",
                    crash_plan.crash_after.len(),
                    self.n
                ),
            });
        }
        // Initially-crashed processes never take a step.
        for i in 0..self.n {
            if crash_plan.crash_after(Pid::new(i)) == Some(0) {
                self.crash(Pid::new(i));
            }
        }
        while !self.is_done() {
            if self.steps >= step_limit {
                return Err(Error::StepLimitExceeded {
                    limit: step_limit,
                    undecided: self.active(),
                });
            }
            let active = self.active();
            let pid = scheduler.next(&active);
            self.step(pid)?;
            if let Some(limit) = crash_plan.crash_after(pid) {
                if self.steps_taken[pid.index()] >= limit {
                    self.crash(pid);
                }
            }
        }
        Ok(self.outcome())
    }

    /// The current outcome snapshot (decisions, statuses, history so far).
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        RunOutcome {
            decisions: self.decisions.clone(),
            statuses: self.statuses.clone(),
            steps: self.steps,
            history: self.history.clone(),
        }
    }

    /// Read access to the register array (checkers, debugging).
    #[must_use]
    pub fn registers(&self) -> &RegisterArray {
        &self.registers
    }
}

/// A factory building the `n` protocol instances of an algorithm from the
/// input identities. `pid` is passed for register addressing only; an
/// index-independent algorithm must not let it influence decisions.
pub type ProtocolFactory<'a> = dyn Fn(Pid, Identity, usize) -> Box<dyn Protocol> + 'a;

/// Builds an executor from a factory and an identity assignment.
#[must_use]
pub fn build_executor(
    factory: &ProtocolFactory<'_>,
    ids: &[Identity],
    oracles: Vec<Box<dyn Oracle>>,
) -> Executor {
    let n = ids.len();
    let protocols = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| factory(Pid::new(i), id, n))
        .collect();
    Executor::new(protocols, oracles)
}

/// **Index-independence harness** (Section 2.2): replays a recorded run
/// under an index permutation `π` and checks the decisions permute
/// accordingly: `output_{π(i)}` in the replay equals `output_i` in the
/// original.
///
/// `schedule` is the original run's schedule
/// ([`History::schedule`](crate::history::History::schedule));
/// `oracle_factory` must build oracles afresh (deterministic policies make
/// the replay meaningful).
///
/// # Errors
///
/// Propagates simulation errors from the replay.
pub fn replay_index_permuted(
    factory: &ProtocolFactory<'_>,
    ids: &[Identity],
    schedule: &[Pid],
    original_decisions: &[Option<usize>],
    permutation: &[usize],
    oracle_factory: &dyn Fn() -> Vec<Box<dyn Oracle>>,
) -> Result<bool> {
    let n = ids.len();
    // Permute inputs: process π(i) now holds identity ids[i]…
    let mut permuted_ids = vec![ids[0]; n];
    for i in 0..n {
        permuted_ids[permutation[i]] = ids[i];
    }
    // …and the schedule replaces each step of i by a step of π(i).
    let permuted_schedule: Vec<Pid> = schedule
        .iter()
        .map(|p| Pid::new(permutation[p.index()]))
        .collect();
    let mut exec = build_executor(factory, &permuted_ids, oracle_factory());
    let mut sched = FixedScheduler::new(permuted_schedule);
    let outcome = exec.run(&mut sched, &CrashPlan::none(n), 1_000_000)?;
    Ok((0..n).all(|i| outcome.decisions[permutation[i]] == original_decisions[i]))
}

/// **Comparison-based harness** (Section 2.2): replays a recorded run with
/// an order-isomorphic identity assignment (same ranks, different values)
/// under the *same* schedule, and checks every process decides the same
/// value.
///
/// # Errors
///
/// Propagates simulation errors from the replay.
pub fn replay_order_isomorphic(
    factory: &ProtocolFactory<'_>,
    fresh_ids: &[Identity],
    schedule: &[Pid],
    original_decisions: &[Option<usize>],
    oracle_factory: &dyn Fn() -> Vec<Box<dyn Oracle>>,
) -> Result<bool> {
    let n = fresh_ids.len();
    let mut exec = build_executor(factory, fresh_ids, oracle_factory());
    let mut sched = FixedScheduler::new(schedule.to_vec());
    let outcome = exec.run(&mut sched, &CrashPlan::none(n), 1_000_000)?;
    Ok(outcome.decisions == original_decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RoundRobinScheduler, SeededScheduler};

    /// Writes its identity, snapshots, decides its rank + 1 among the ids
    /// it saw (a simple comparison-based, index-independent protocol).
    #[derive(Debug, Clone)]
    struct RankProtocol {
        id: u64,
        wrote: bool,
    }

    impl RankProtocol {
        fn new(id: Identity) -> Self {
            RankProtocol {
                id: u64::from(id.get()),
                wrote: false,
            }
        }
    }

    impl Protocol for RankProtocol {
        fn next_action(&mut self, obs: Observation) -> Action {
            match obs {
                Observation::Start => {
                    self.wrote = true;
                    Action::Write(vec![self.id])
                }
                Observation::Written => Action::Snapshot,
                Observation::Snapshot(snap) => {
                    let mut seen: Vec<u64> = snap.iter().flatten().map(|v| v[0]).collect();
                    seen.sort_unstable();
                    let rank = seen.iter().position(|&x| x == self.id).unwrap();
                    Action::Decide(rank + 1)
                }
                _ => unreachable!("RankProtocol never reads cells or oracles"),
            }
        }

        fn boxed_clone(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
    }

    fn rank_factory() -> Box<ProtocolFactory<'static>> {
        Box::new(|_pid, id, _n| Box::new(RankProtocol::new(id)))
    }

    fn ids(values: &[u32]) -> Vec<Identity> {
        values.iter().map(|&v| Identity::new(v).unwrap()).collect()
    }

    #[test]
    fn synchronous_rank_run_decides_exact_ranks() {
        let factory = rank_factory();
        let mut exec = build_executor(&factory, &ids(&[5, 2, 9]), vec![]);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(3), 100)
            .unwrap();
        // Synchronous schedule ⇒ everyone sees everyone.
        assert_eq!(outcome.decisions, vec![Some(2), Some(1), Some(3)]);
        assert_eq!(outcome.steps, 9);
    }

    #[test]
    fn solo_run_decides_rank_one() {
        let factory = rank_factory();
        let mut exec = build_executor(&factory, &ids(&[5, 2, 9]), vec![]);
        // Crash p2, p3 before they start; p1 runs solo.
        let plan = CrashPlan::with_crashes(3, &[(Pid::new(1), 0), (Pid::new(2), 0)]);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &plan, 100)
            .unwrap();
        assert_eq!(outcome.decisions, vec![Some(1), None, None]);
        assert_eq!(outcome.statuses[1], ProcessStatus::Crashed);
    }

    #[test]
    fn mid_run_crash_freezes_register() {
        let factory = rank_factory();
        let mut exec = build_executor(&factory, &ids(&[5, 2, 9]), vec![]);
        // p1 writes (1 step) then crashes; others still see its id.
        let plan = CrashPlan::with_crashes(3, &[(Pid::new(0), 1)]);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &plan, 100)
            .unwrap();
        assert_eq!(outcome.decisions[0], None);
        // p2 (id 2) still ranks itself 1st, p3 (id 9) 3rd (it saw 5).
        assert_eq!(outcome.decisions[1], Some(1));
        assert_eq!(outcome.decisions[2], Some(3));
    }

    #[test]
    fn step_limit_is_enforced() {
        let factory = rank_factory();
        let mut exec = build_executor(&factory, &ids(&[5, 2, 9]), vec![]);
        let err = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(3), 2)
            .unwrap_err();
        assert!(matches!(err, Error::StepLimitExceeded { .. }));
    }

    #[test]
    fn index_independence_of_rank_protocol() {
        let factory = rank_factory();
        let the_ids = ids(&[5, 2, 9]);
        let mut exec = build_executor(&factory, &the_ids, vec![]);
        let outcome = exec
            .run(&mut SeededScheduler::new(11), &CrashPlan::none(3), 100)
            .unwrap();
        let schedule = outcome.history.schedule();
        for permutation in [[1, 2, 0], [2, 1, 0], [0, 2, 1]] {
            assert!(replay_index_permuted(
                &factory,
                &the_ids,
                &schedule,
                &outcome.decisions,
                &permutation,
                &|| vec![],
            )
            .unwrap());
        }
    }

    #[test]
    fn comparison_basedness_of_rank_protocol() {
        let factory = rank_factory();
        let the_ids = ids(&[5, 2, 9]);
        let mut exec = build_executor(&factory, &the_ids, vec![]);
        let outcome = exec
            .run(&mut SeededScheduler::new(3), &CrashPlan::none(3), 100)
            .unwrap();
        let schedule = outcome.history.schedule();
        // Same order type (2 < 5 < 9 → 10 < 40 < 77).
        assert!(replay_order_isomorphic(
            &factory,
            &ids(&[40, 10, 77]),
            &schedule,
            &outcome.decisions,
            &|| vec![],
        )
        .unwrap());
    }

    #[test]
    fn partial_completability() {
        let wsb = gsb_core::SymmetricGsb::wsb(4).unwrap().to_spec();
        // Two processes decided 1; two undecided → completable (add a 2).
        assert!(partial_decisions_completable(
            &wsb,
            &[Some(1), None, Some(1), None]
        ));
        // All four decided 1 → illegal.
        assert!(!partial_decisions_completable(
            &wsb,
            &[Some(1), Some(1), Some(1), Some(1)]
        ));
        // Perfect renaming: duplicate name is immediately illegal.
        let pr = gsb_core::SymmetricGsb::perfect_renaming(3)
            .unwrap()
            .to_spec();
        assert!(!partial_decisions_completable(
            &pr,
            &[Some(2), Some(2), None]
        ));
        assert!(partial_decisions_completable(&pr, &[Some(2), None, None]));
    }

    #[test]
    fn history_schedule_matches_run() {
        let factory = rank_factory();
        let mut exec = build_executor(&factory, &ids(&[3, 1]), vec![]);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(2), 100)
            .unwrap();
        let schedule = outcome.history.schedule();
        assert_eq!(schedule.len(), outcome.steps);
        assert_eq!(schedule[0], Pid::new(0));
        assert_eq!(schedule[1], Pid::new(1));
    }
}
