//! Process indexes and crash state.
//!
//! Section 2.1 of the paper distinguishes a process's *index* `i` (an
//! addressing mechanism: `p_i` writes register `A[i]`) from its *identity*
//! `id_i` (the only input, used by comparison-based computation). [`Pid`]
//! is the index; identities are [`gsb_core::Identity`].

/// A process index `i ∈ [0..n)`, used only for register addressing.
///
/// The paper's index-independence requirement (Section 2.2) means protocol
/// decisions may not depend on `Pid` values; the executor's permutation
/// replay harness ([`crate::sim::Executor::run`] plus
/// [`crate::sim::replay_index_permuted`])
/// checks this dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(usize);

impl Pid {
    /// Wraps a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Pid(index)
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0 + 1) // the paper numbers processes p1..pn
    }
}

impl From<usize> for Pid {
    fn from(index: usize) -> Self {
        Pid(index)
    }
}

/// The liveness status of a process within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessStatus {
    /// Still taking steps; has not decided.
    Running,
    /// Wrote its output register (decided); takes no further steps in the
    /// simulation (a decided process's remaining steps are irrelevant to
    /// task correctness).
    Decided,
    /// Crashed: takes no further steps.
    Crashed,
}

impl ProcessStatus {
    /// Whether the process can be scheduled.
    #[must_use]
    pub fn is_active(self) -> bool {
        matches!(self, ProcessStatus::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display_is_one_based_like_the_paper() {
        assert_eq!(Pid::new(0).to_string(), "p1");
        assert_eq!(Pid::new(4).to_string(), "p5");
    }

    #[test]
    fn status_activity() {
        assert!(ProcessStatus::Running.is_active());
        assert!(!ProcessStatus::Decided.is_active());
        assert!(!ProcessStatus::Crashed.is_active());
    }

    #[test]
    fn pid_conversions() {
        let p: Pid = 3usize.into();
        assert_eq!(p.index(), 3);
    }
}
