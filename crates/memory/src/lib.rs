//! # gsb-memory — the wait-free shared-memory substrate
//!
//! This crate builds the computation model of *The Universe of Symmetry
//! Breaking Tasks* (Section 2): `n` asynchronous crash-prone processes
//! communicating through single-writer/multi-reader atomic registers, with
//! snapshot `READ`s, executed wait-free (`t = n − 1`).
//!
//! Because the paper's correctness notions quantify over **all** runs, the
//! substrate is a deterministic, schedule-controllable simulator rather
//! than a best-effort threaded runtime:
//!
//! * [`sim`] — the step-level executor: [`Protocol`] state machines,
//!   [`Action`]/[`Observation`] at one-atomic-op granularity, crash plans,
//!   and dynamic checkers for the paper's *index-independent* and
//!   *comparison-based* restrictions.
//! * [`scheduler`] — round-robin, seeded-random, adversarial (solo bursts)
//!   and scripted schedules.
//! * [`enumerate`] — exhaustive schedule enumeration for small systems
//!   (every run, not a sample).
//! * [`register`] — the 1WnR register array with a write log.
//! * [`snapshot`] — the AADGMS wait-free atomic snapshot implemented from
//!   single-cell reads, with a linearizability checker against the write
//!   log (discharging the paper's "snapshots are implementable" footnote).
//! * [`immediate`] — the Borowsky–Gafni one-shot immediate snapshot, whose
//!   executions generate the chromatic subdivisions used by `gsb-topology`.
//! * [`oracle`] — black-box task objects for enriched models
//!   `ASM_{n,t}[T]`: a universal [`GsbOracle`] (any feasible GSB task,
//!   adversarial reply policies), test&set, consensus.
//! * [`threaded`] — the same primitives on real OS threads and hardware
//!   atomics (splitters, grid renaming, double-collect scans).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod enumerate;
mod error;
pub mod history;
pub mod immediate;
pub mod oracle;
pub mod process;
pub mod register;
pub mod scheduler;
pub mod sim;
pub mod snapshot;
pub mod threaded;
pub mod trace;

pub use enumerate::{
    collect_all_runs, enumerate_decisions_memoized, enumerate_decisions_naive, enumerate_schedules,
    enumerate_schedules_reference, permutations, DecisionMultiset, EnumerationStats, Symmetry,
};
pub use error::{Error, Result};
pub use history::{Event, EventKind, History};
pub use immediate::{IsMachine, IsProtocol, IsStep};
pub use oracle::{ConsensusOracle, GsbOracle, Oracle, OraclePolicy, TestAndSetOracle};
pub use process::{Pid, ProcessStatus};
pub use register::{RegisterArray, Value, Word};
pub use scheduler::{
    AdversarialScheduler, FixedScheduler, RoundRobinScheduler, Scheduler, SeededScheduler,
};
pub use sim::{
    build_executor, partial_decisions_completable, replay_index_permuted, replay_order_isomorphic,
    Action, CrashPlan, Executor, Observation, Protocol, ProtocolFactory, RunOutcome,
};
pub use snapshot::{ScanMachine, ScanStep, SnapshotCell, UpdateMachine, UpdateStep};
pub use trace::{render_event, render_history, render_outcome};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Executor>();
        assert_send::<RunOutcome>();
        assert_send::<CrashPlan>();
    }
}
