//! The solvability frontier the CDCL engine opened — pinned as
//! regression tests.
//!
//! The seed's plain backtracking search could not certify these within
//! reasonable time (its own docs capped WSB at `n = 3, r ≤ 1` and called
//! the `r = 2` instance "out of reach for plain search"; the retained
//! reference engine needs ~10 s on it, the conflict-driven engine ~1 ms):
//!
//! * **WSB `n = 3, r = 2` UNSAT** — the 81-class not-all-equal system
//!   behind the index-lemma argument of the paper's \[17\].
//! * **`(2n−1)`-renaming at `n = 4` solved in two rounds** — `χ²(Δ³)`
//!   has 865 classes and 5625 facet constraints; one round provably
//!   needs 10 names, two rounds reach the wait-free optimum of 7.

use gsb_core::{GsbSpec, SymmetricGsb};
use gsb_topology::{election_impossibility_certificate, SearchMode, SearchResult, SymmetricSearch};

/// Engine-path shorthand (the free function of the same name is
/// deprecated in favor of the engine crate).
fn solvable_in_rounds(spec: &GsbSpec, rounds: usize) -> SearchResult {
    SymmetricSearch::new(spec.clone(), rounds).solve()
}

#[test]
fn wsb_n3_r2_unsat_certificate() {
    // Previously infeasible: the r = 2 index-lemma UNSAT at n = 3.
    let wsb = SymmetricGsb::wsb(3).unwrap().to_spec();
    assert!(!solvable_in_rounds(&wsb, 2).is_solvable());
    // 2-slot ≡ WSB must agree at r = 2 as well (the seed test could
    // only check this through r = 1).
    let slot = SymmetricGsb::slot(3, 2).unwrap().to_spec();
    assert!(!solvable_in_rounds(&slot, 2).is_solvable());
}

#[test]
fn election_n3_r2_unsat_cross_checked_against_certificate() {
    // The search's UNSAT and Theorem 11's structural certificate must
    // both hold on the same complex.
    election_impossibility_certificate(3, 2).expect("Theorem 11 certificate holds");
    let election = gsb_core::GsbSpec::election(3).unwrap();
    assert!(!solvable_in_rounds(&election, 2).is_solvable());
}

#[test]
fn renaming_n4_needs_ten_names_in_one_round() {
    // The rank-in-view bound: one IS round renames n = 4 into
    // n(n+1)/2 = 10 names and no fewer.
    let ten = SymmetricGsb::renaming(4, 10).unwrap().to_spec();
    assert!(solvable_in_rounds(&ten, 1).is_solvable());
    let nine = SymmetricGsb::renaming(4, 9).unwrap().to_spec();
    assert!(!solvable_in_rounds(&nine, 1).is_solvable());
}

#[test]
fn loose_renaming_n4_solved_in_two_rounds() {
    // Previously infeasible: a symmetric decision map for
    // (2n−1)-renaming (7 names) on χ²(Δ³) — 865 classes, 5625 facets.
    let seven = SymmetricGsb::loose_renaming(4).unwrap().to_spec();
    let search = SymmetricSearch::new(seven, 2);
    match search.solve() {
        SearchResult::Solvable { assignment } => {
            // `solve` re-checks every facet before returning; sanity-pin
            // the shape here too.
            assert_eq!(assignment.len(), search.classes().len());
            assert!(assignment.iter().all(|&v| (1..=7).contains(&v)));
        }
        SearchResult::Unsolvable => panic!("(2n−1)-renaming must be 2-round solvable at n = 4"),
    }
}

#[test]
fn renaming_n5_needs_fifteen_names_in_one_round() {
    // The n = 5 frontier, opened by the streaming construction pipeline
    // (χ(Δ⁴): 541 facets, 15 classes): one IS round renames five
    // processes into n(n+1)/2 = 15 names (rank-in-view), and not into
    // the wait-free optimum of 2n−1 = 9.
    let fifteen = SymmetricGsb::renaming(5, 15).unwrap().to_spec();
    let search = SymmetricSearch::new(fifteen.clone(), 1);
    let result = search.solve();
    assert!(result.is_solvable());
    // The witness replays facet-by-facet on a fresh complex.
    let map = search.decision_map(&result).expect("SAT with known rounds");
    map.check(&fifteen).expect("genuine witness must replay");
    let nine = SymmetricGsb::loose_renaming(5).unwrap().to_spec();
    assert!(!SymmetricSearch::new(nine, 1).solve().is_solvable());
}

#[test]
#[ignore = "χ³(Δ²) UNSAT over 1,086 classes: ~125k conflicts, ~7 s of release-build CDCL \
            (minutes under debug); the --full search bench records it in BENCH_search.json"]
fn wsb_n3_r3_unsat_certificate() {
    // One round deeper than the r = 2 frontier row: the index-lemma
    // UNSAT still holds on χ³(Δ²), whose 2,197 facets stream through
    // construction and constraint prep in milliseconds.
    let wsb = SymmetricGsb::wsb(3).unwrap().to_spec();
    assert!(!solvable_in_rounds(&wsb, 3).is_solvable());
}

#[test]
#[ignore = "χ²(Δ⁴) SAT over 10,945 classes: minutes of 1-core CDCL (the --full search \
            bench records it in BENCH_search.json); the orbit-quotient prep itself \
            takes ~50 ms"]
fn loose_renaming_n5_solved_in_two_rounds() {
    // The first n = 5, r = 2 frontier row, reached through the fused
    // orbit-quotient instance prep: (2n−1)-renaming (9 names) has a
    // symmetric decision map on χ²(Δ⁴) — one round provably needs
    // n(n+1)/2 = 15 names (see above), two reach the wait-free optimum.
    let nine = SymmetricGsb::loose_renaming(5).unwrap().to_spec();
    let search = SymmetricSearch::from_spec_streaming(nine.clone(), 2);
    let result = search.solve();
    match &result {
        SearchResult::Solvable { assignment } => {
            assert_eq!(assignment.len(), 10_945);
            assert!(assignment.iter().all(|&v| (1..=9).contains(&v)));
        }
        SearchResult::Unsolvable => panic!("(2n−1)-renaming must be 2-round solvable at n = 5"),
    }
    // The witness replays facet-by-facet on a fresh reference build.
    let map = search.decision_map(&result).expect("SAT with known rounds");
    map.check(&nine).expect("genuine witness must replay");
}

#[test]
#[ignore = "χ²(Δ⁴) SAT over 10,945 classes through the completion race: the local lane's \
            offending-class repair walk answers in seconds where plain CDCL needs minutes \
            (the --full search bench records the split in BENCH_search.json); the raw-facet \
            witness replay then costs a reference complex build"]
fn loose_renaming_n5_r2_race_record() {
    // The large-SAT record configuration: CDCL and the min-conflicts
    // repair engine race on χ²(Δ⁴), first finisher wins, and either
    // winner's witness is the same replayable decision map.
    let nine = SymmetricGsb::loose_renaming(5).unwrap().to_spec();
    let search = SymmetricSearch::from_spec_streaming(nine.clone(), 2);
    let (result, stats) =
        search.solve_mode_with(&gsb_topology::CdclConfig::default(), SearchMode::Race);
    let result = result.expect("the race's CDCL lane is complete");
    match &result {
        SearchResult::Solvable { assignment } => {
            assert_eq!(assignment.len(), 10_945);
            assert!(assignment.iter().all(|&v| (1..=9).contains(&v)));
        }
        SearchResult::Unsolvable => panic!("(2n−1)-renaming must be 2-round solvable at n = 5"),
    }
    assert!(
        stats.local_won || stats.conflicts > 0,
        "one of the two lanes did the work"
    );
    // The witness replays facet-by-facet on a fresh reference build —
    // whichever lane produced it.
    let map = search.decision_map(&result).expect("SAT with known rounds");
    map.check(&nine).expect("race winner's witness must replay");
}

#[test]
#[ignore = "χ²(Δ³) UNSAT over 865 classes for wsb(4): hours-scale 1-core CDCL — the \
            hardest refutation in the repo (4 = 2² is a prime power, so the index-lemma \
            obstruction has no parity escape); run explicitly when refreshing the record"]
fn wsb_n4_r2_unsat_certificate() {
    // The first n = 4 weak-symmetry-breaking row: r = 2 stays UNSAT,
    // matching the paper's prime-power characterization (wsb(4) is
    // wait-free *unsolvable* outright, and in particular has no 2-round
    // symmetric decision map; contrast loose_renaming(4), SAT on the
    // same complex).
    let wsb = SymmetricGsb::wsb(4).unwrap().to_spec();
    let search = SymmetricSearch::from_spec_streaming(wsb, 2);
    let (result, _) =
        search.solve_mode_with(&gsb_topology::CdclConfig::default(), SearchMode::Cdcl);
    assert!(
        !result.expect("ungoverned CDCL is complete").is_solvable(),
        "wsb(4) must have no 2-round symmetric decision map"
    );
}

/// The lift pipeline at small scale, exercised on every test run: solve
/// `renaming(3,6)` at `r = 1`, lift the map through the subdivision,
/// and let the repair engine verify the lifted map *is* a complete
/// `r = 2` witness — full coverage, zero violations, zero moves. This
/// is the always-on twin of the `n = 5, r = 3` record below.
#[test]
fn lifted_map_is_a_complete_witness_one_round_deeper() {
    let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
    let r1 = SymmetricSearch::new(spec.clone(), 1);
    let result = r1.solve();
    let map = r1
        .decision_map(&result)
        .expect("renaming(3,6) solves at r = 1");
    let r2 = SymmetricSearch::new(spec, 2);
    let seed = r2.lift_warm_start(&map);
    assert_eq!(seed.len(), r2.classes().len());
    assert!(seed.iter().all(|&v| v != 0), "the lift covers every class");
    let config = gsb_topology::CdclConfig {
        warm_start: Some(std::sync::Arc::new(seed.clone())),
        ..gsb_topology::CdclConfig::default()
    };
    let (lifted, stats) = r2.solve_mode_with(&config, SearchMode::Local);
    let lifted = lifted.expect("a lifted SAT map is SAT");
    assert!(
        stats.local_won,
        "the instance must be past the tiny-route cutoff, or this test is vacuous"
    );
    let expected: Vec<usize> = seed.iter().map(|&v| v as usize).collect();
    assert_eq!(lifted.assignment(), Some(expected.as_slice()));
    assert_eq!(stats.local_steps, 0, "a lifted SAT map needs no repair");
}

#[test]
#[ignore = "χ³(Δ⁴) SAT over the ~32 GB streamed constraint system (541³ ≈ 158M raw \
            facets; the build alone takes minutes): certified constructively through \
            the lift theorem, since cold search at this scale exhausts any reasonable \
            budget and the raw-facet complex replay is out of reach"]
fn loose_renaming_n5_solved_in_three_rounds_by_lifted_map() {
    // The first n = 5, r = 3 row. The local lane's offending-class
    // repair walk cracks r = 2 in seconds; the r = 2 map then lifts
    // through the subdivision (each r = 3 class's previous-round
    // subview projects to its parent class), and because facets project
    // to facets with the same value multiset, the lifted assignment is
    // itself a complete r = 3 decision map. The repair engine verifies
    // exactly that: handed the lift as a fully-pinned warm seed, it
    // recounts every deduplicated facet's value multiset from scratch,
    // finds zero violations, and returns the map without a single move.
    let nine = SymmetricGsb::loose_renaming(5).unwrap().to_spec();
    let r2 = SymmetricSearch::from_spec_streaming(nine.clone(), 2);
    let config = gsb_topology::CdclConfig::default();
    let (r2_result, r2_stats) = r2.solve_mode_with(&config, SearchMode::Local);
    let r2_result = r2_result.expect("local search cracks the r = 2 record in seconds");
    assert!(r2_stats.local_won);
    let map = r2.decision_map(&r2_result).expect("SAT with known rounds");
    let r3 = SymmetricSearch::from_spec_streaming(nine, 3);
    let seed = r3.lift_warm_start(&map);
    assert_eq!(seed.len(), r3.classes().len());
    assert!(seed.iter().all(|&v| v != 0), "the lift covers every class");
    assert!(seed.iter().all(|&v| (1..=9).contains(&v)));
    let lifted_config = gsb_topology::CdclConfig {
        warm_start: Some(std::sync::Arc::new(seed.clone())),
        ..gsb_topology::CdclConfig::default()
    };
    let (r3_result, r3_stats) = r3.solve_mode_with(&lifted_config, SearchMode::Local);
    let r3_result = r3_result.expect("a lifted SAT map is SAT");
    let expected: Vec<usize> = seed.iter().map(|&v| v as usize).collect();
    assert_eq!(
        r3_result.assignment(),
        Some(expected.as_slice()),
        "the repair engine must accept the lifted map verbatim"
    );
    assert_eq!(r3_stats.local_steps, 0, "a lifted SAT map needs no repair");
}
