//! The orbit-quotient streaming pipeline against the full
//! materialized-complex path — the equivalence suite behind the fused
//! `SymmetricSearch::from_spec_streaming` front door.
//!
//! The orbit pipeline stamps one lex-leader representative per
//! `S_n`-orbit of facets and recovers exact counts by orbit–stabilizer;
//! everything the solver consumes (classes, deduplicated facet
//! constraints, weights) must be indistinguishable from the full
//! build's. The byte-level instance identity is pinned in-crate
//! (`solvability::tests`); this suite covers counts, views, verdicts,
//! and witness replay over the zoo.

use gsb_core::{GsbSpec, SymmetricGsb};
use gsb_topology::{protocol_complex_with_stats, ConstraintSystem, OrbitFrontier, SymmetricSearch};

/// The equivalence zoo: `(spec, rounds)` pairs spanning SAT and UNSAT,
/// symmetric and asymmetric specs, `n ≤ 4`.
fn zoo() -> Vec<(GsbSpec, usize)> {
    vec![
        (SymmetricGsb::renaming(2, 3).unwrap().to_spec(), 0),
        (SymmetricGsb::renaming(2, 3).unwrap().to_spec(), 1),
        (SymmetricGsb::renaming(2, 2).unwrap().to_spec(), 2),
        (SymmetricGsb::wsb(3).unwrap().to_spec(), 1),
        (SymmetricGsb::wsb(3).unwrap().to_spec(), 2),
        (SymmetricGsb::slot(3, 2).unwrap().to_spec(), 2),
        (SymmetricGsb::renaming(3, 6).unwrap().to_spec(), 1),
        (SymmetricGsb::loose_renaming(3).unwrap().to_spec(), 1),
        (GsbSpec::election(3).unwrap(), 2),
        (SymmetricGsb::renaming(4, 10).unwrap().to_spec(), 1),
        (SymmetricGsb::renaming(4, 9).unwrap().to_spec(), 1),
        (SymmetricGsb::wsb(4).unwrap().to_spec(), 1),
    ]
}

#[test]
fn fused_prep_matches_full_prep_over_the_zoo() {
    for (spec, rounds) in zoo() {
        let full = SymmetricSearch::new(spec.clone(), rounds);
        let fused = SymmetricSearch::from_spec_streaming(spec.clone(), rounds);
        // Same classes — as materialized views, in the same canonical
        // order — and the same deduplicated constraint family size.
        assert_eq!(full.classes(), fused.classes(), "{spec} r={rounds}");
        assert_eq!(full.facet_count(), fused.facet_count(), "{spec} r={rounds}");
        assert_eq!(fused.rounds(), Some(rounds));
    }
}

#[test]
fn fused_and_full_verdicts_agree_over_the_zoo() {
    for (spec, rounds) in zoo() {
        let full = SymmetricSearch::new(spec.clone(), rounds);
        let fused = SymmetricSearch::from_spec_streaming(spec.clone(), rounds);
        let full_result = full.solve();
        let fused_result = fused.solve();
        assert_eq!(
            full_result.is_solvable(),
            fused_result.is_solvable(),
            "{spec} r={rounds}"
        );
        // SAT verdicts from the fused path package replayable maps that
        // survive the independent facet-by-facet check on a *fresh
        // reference build* — the fused pipeline never gets to verify
        // itself.
        if let Some(map) = fused.decision_map(&fused_result) {
            map.check(&spec)
                .unwrap_or_else(|e| panic!("{spec} r={rounds}: fused witness rejected: {e}"));
        }
    }
}

#[test]
fn orbit_counters_match_full_build_counters() {
    // The orbit pipeline's exact orbit–stabilizer accounting, against
    // the full pipeline's literal counts.
    for (n, r) in [(2usize, 2usize), (3, 1), (3, 2), (4, 1), (4, 2), (5, 1)] {
        let (_, full) = protocol_complex_with_stats(n, r);
        let (_, orbit) = ConstraintSystem::streamed(n, r);
        assert_eq!(orbit.facets, full.facets, "facets at ({n},{r})");
        assert_eq!(orbit.vertices, full.vertices, "vertices at ({n},{r})");
        assert_eq!(orbit.classes, full.classes, "classes at ({n},{r})");
        assert!(
            orbit.orbit_rows <= full.facets,
            "representatives never exceed facets"
        );
    }
}

#[test]
fn non_trivial_stabilizers_are_counted_exactly() {
    // χ(Δ²) has four facet orbits of sizes 6, 3, 3, 1: the all-see-all
    // schedule is fixed by the whole group, the two-block schedules by
    // a transposition. Any stabilizer slip breaks the 13.
    let mut frontier = OrbitFrontier::new(3);
    frontier.advance();
    let stats = frontier.quotient_stats();
    assert_eq!(stats.orbit_rows, 4);
    assert_eq!(stats.facets, 13);
    // Two rounds deep the counts must still be exact (13² = 169 facets
    // from 11 representatives — stabilizers persist across rounds).
    frontier.advance();
    let stats = frontier.quotient_stats();
    assert_eq!(stats.facets, 169);
    assert!(stats.orbit_rows < 169 / 3, "quotient actually collapses");
}

#[test]
fn zero_round_orbit_frontier_is_the_fixed_simplex() {
    for n in 1..=4usize {
        let (system, stats) = ConstraintSystem::streamed(n, 0);
        assert_eq!(stats.facets, 1);
        assert_eq!(stats.orbit_rows, 1);
        assert_eq!(stats.classes, 1, "all initial views are isomorphic");
        assert_eq!(system.class_count(), 1);
        assert_eq!(system.facet_count(), 1);
    }
}

#[test]
fn orbit_rows_shrink_by_up_to_the_group_order() {
    // The point of the whole pipeline: χ²(Δ³)'s 5,625 facets are held
    // as ≤ 300 representatives (n! = 24 collapse, minus stabilizers).
    let (_, stats) = ConstraintSystem::streamed(4, 2);
    assert_eq!(stats.facets, 5_625);
    assert!(
        stats.orbit_rows * 18 <= stats.facets,
        "5,625 facets collapse to {} representatives",
        stats.orbit_rows
    );
    assert!(
        stats.stamped_rows < stats.facets / 5,
        "stamping is the saved work: {} stamped vs {} facets",
        stats.stamped_rows,
        stats.facets
    );
}
