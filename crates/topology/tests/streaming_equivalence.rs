//! The streaming template-stamping subdivision builder against the
//! retained reference builder, plus the pinned construction frontier.
//!
//! The streaming pipeline (flat CSR frontier, chunked stamping,
//! incremental signature classes — see `DESIGN.md` §8) must be
//! *indistinguishable* from the seed's tuple-cloning builder: same
//! facets as vertex-content sets (vertex ids may be numbered
//! differently), same signature classes, same structural invariants.

use std::collections::BTreeSet;

use gsb_topology::{
    protocol_complex, protocol_complex_reference, protocol_complex_with_stats, ChromaticComplex,
    Vertex, View,
};

/// Canonical content form of a complex: every facet as its sorted
/// `(color, view)` multiset, the whole family sorted — invariant under
/// vertex renumbering and facet reordering.
fn canonical_facets(complex: &ChromaticComplex) -> Vec<Vec<(u32, View)>> {
    let mut facets: Vec<Vec<(u32, View)>> = complex
        .facets()
        .map(|facet| {
            let mut contents: Vec<(u32, View)> = facet
                .iter()
                .map(|&v| {
                    let vertex = &complex.vertices()[v as usize];
                    (vertex.color, vertex.view.clone())
                })
                .collect();
            contents.sort();
            contents
        })
        .collect();
    facets.sort();
    facets
}

#[test]
fn streaming_builder_matches_reference_builder_through_n4_r2() {
    for n in 1..=4usize {
        for r in 0..=2usize {
            let streamed = protocol_complex(n, r);
            let reference = protocol_complex_reference(n, r);
            assert_eq!(
                streamed.facet_count(),
                reference.facet_count(),
                "facet count at ({n},{r})"
            );
            assert_eq!(
                streamed.vertices().len(),
                reference.vertices().len(),
                "vertex count at ({n},{r})"
            );
            assert_eq!(
                canonical_facets(&streamed),
                canonical_facets(&reference),
                "facet contents at ({n},{r})"
            );
            // Same signature classes (as sets — class order follows
            // vertex order, which is builder-specific).
            let streamed_classes: BTreeSet<View> = streamed
                .signature_quotient()
                .classes
                .iter()
                .cloned()
                .collect();
            let reference_classes: BTreeSet<View> = reference
                .signature_quotient()
                .classes
                .iter()
                .cloned()
                .collect();
            assert_eq!(streamed_classes, reference_classes, "classes at ({n},{r})");
        }
    }
    // One deeper column: the subdivided edge through r = 3.
    let streamed = protocol_complex(2, 3);
    let reference = protocol_complex_reference(2, 3);
    assert_eq!(canonical_facets(&streamed), canonical_facets(&reference));
}

#[test]
fn streamed_quotient_is_consistent_per_vertex() {
    // The builder-attached quotient must assign every vertex the class
    // whose signature is that vertex's own view signature.
    for (n, r) in [(3usize, 2usize), (4, 2)] {
        let complex = protocol_complex(n, r);
        let quotient = complex.signature_quotient();
        for (v, vertex) in complex.vertices().iter().enumerate() {
            let class = quotient.vertex_class[v] as usize;
            assert_eq!(
                quotient.classes[class],
                vertex.view.signature(),
                "vertex {v} of χ^{r}(Δ^{})",
                n - 1
            );
        }
    }
}

/// The pinned construction frontier: `(n, r, facets, vertices,
/// classes)`. Facet counts are the ordered Bell powers `fubini(n)^r`
/// (stamping is injective); vertex and class counts were cross-checked
/// against the reference builder when first recorded. The construction
/// bench (`gsb-bench --bin construct`) fails on drift against the same
/// table via [`gsb_topology::BuildStats`].
const PINNED: &[(usize, usize, usize, usize, usize)] = &[
    (3, 3, 2_197, 1_140, 1_086),
    (4, 2, 5_625, 1_124, 865),
    (5, 1, 541, 80, 15),
    (5, 2, 292_681, 14_805, 10_945),
];

#[test]
fn pinned_construction_counts() {
    for &(n, r, facets, vertices, classes) in PINNED {
        // (5,2) is the largest in-suite case: ~100 ms release, a few
        // seconds debug — still inside a normal test budget.
        let (complex, stats) = protocol_complex_with_stats(n, r);
        assert_eq!(stats.facets, facets, "facets of χ^{r}(Δ^{})", n - 1);
        assert_eq!(stats.vertices, vertices, "vertices of χ^{r}(Δ^{})", n - 1);
        assert_eq!(stats.classes, classes, "classes of χ^{r}(Δ^{})", n - 1);
        assert_eq!(complex.facet_count(), facets);
        assert_eq!(stats.peak_frontier_rows, facets, "final frontier is peak");
    }
}

#[test]
#[ignore = "χ³(Δ³) (421,875 facets) takes ~1 s release but minutes under a debug build; \
            run explicitly or via the construction bench"]
fn pinned_construction_counts_chi3_delta3() {
    let (_, stats) = protocol_complex_with_stats(4, 3);
    assert_eq!(
        (stats.facets, stats.vertices, stats.classes),
        (421_875, 72_560, 69_250)
    );
}

#[test]
fn chi_of_delta4_is_a_strongly_connected_pseudomanifold() {
    // The structural facts Theorem 11 leans on, at the new n = 5 reach.
    let complex = protocol_complex(5, 1);
    assert_eq!(complex.facet_count(), 541);
    assert!(complex.is_pseudomanifold());
    assert!(complex.is_strongly_connected());
    // χ(Δ⁴)'s boundary is the subdivided boundary of the 4-simplex:
    // five χ(Δ³)s of 75 facets each.
    assert_eq!(complex.boundary_ridge_count(), 5 * 75);
}

#[test]
fn streamed_complex_supports_later_interning() {
    // The streaming fast path skips the vertex dedup index; a later
    // intern must still deduplicate against the streamed vertices.
    let mut complex = protocol_complex(2, 1);
    let existing = complex.vertices()[0].clone();
    let count_before = complex.vertices().len();
    let id = complex.intern(existing.clone());
    assert_eq!(complex.vertices()[id as usize], existing);
    assert_eq!(complex.vertices().len(), count_before, "no duplicate");
    // An initial (depth-0) view cannot occur in a 1-round complex.
    let fresh = Vertex {
        color: 1,
        view: View::Initial { id: 1 },
    };
    let fresh_id = complex.intern(fresh);
    assert_eq!(fresh_id as usize, count_before, "new vertex appended");
}
