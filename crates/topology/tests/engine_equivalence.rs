//! Equivalence of the decision-map search engines over a task zoo.
//!
//! The CDCL engine ([`SymmetricSearch::solve`]) must agree verdict-for-
//! verdict with the retained backtracking oracle
//! ([`SymmetricSearch::solve_reference`]) on every zoo task and on
//! property-sampled symmetric specs at `r ∈ {0, 1}` — with orbit
//! learning both on and off, so an unsound symmetry image would surface
//! as a divergence. SAT answers are additionally re-checked
//! facet-by-facet inside `solve_with` (a bad map panics there).

use gsb_core::{GsbSpec, SymmetricGsb};
use gsb_topology::{CdclConfig, DecisionMap, SearchMode, SearchResult, SymmetricSearch};
use proptest::prelude::*;

/// Every named paper task at this `n` (the catalog already includes the
/// asymmetric members, e.g. election).
fn zoo(n: usize) -> Vec<GsbSpec> {
    gsb_core::zoo::catalog(n)
        .expect("zoo is well-formed")
        .into_iter()
        .map(|entry| entry.spec)
        .collect()
}

fn engines_agree(spec: &GsbSpec, rounds: usize) {
    let search = SymmetricSearch::new(spec.clone(), rounds);
    let reference = search.solve_reference();
    for symmetric_learning in [true, false] {
        let config = CdclConfig {
            symmetric_learning,
            ..CdclConfig::default()
        };
        // `solve_cdcl_with`, not the `solve_with` front door: the
        // production path routes tiny instances (most of this suite)
        // straight to the backtracking oracle, which would make the
        // CDCL-vs-oracle comparison vacuous.
        let (cdcl, _) = search.solve_cdcl_with(&config);
        assert_eq!(
            cdcl.is_solvable(),
            reference.is_solvable(),
            "engines diverge on {spec:?} at r = {rounds} \
             (symmetric_learning = {symmetric_learning})"
        );
        if let SearchResult::Solvable { assignment } = &cdcl {
            assert_eq!(assignment.len(), search.classes().len());
        }
    }
}

/// The decision-strategy toggles and the completion engines against the
/// oracle: orbit-guided decisions on/off must not change any verdict,
/// the CDCL-vs-local race is complete and must agree everywhere, and
/// local search alone may only ever return SAT verdicts the oracle
/// confirms (exhaustion on a genuinely SAT zoo instance would be a
/// budget bug — the repair walk cracks these in microseconds).
fn modes_agree(spec: &GsbSpec, rounds: usize) {
    let search = SymmetricSearch::new(spec.clone(), rounds);
    let reference = search.solve_reference();
    for orbit_decisions in [false, true] {
        let config = CdclConfig {
            orbit_decisions,
            ..CdclConfig::default()
        };
        let (cdcl, _) = search.solve_cdcl_with(&config);
        assert_eq!(
            cdcl.is_solvable(),
            reference.is_solvable(),
            "engines diverge on {spec:?} at r = {rounds} \
             (orbit_decisions = {orbit_decisions})"
        );
    }
    let config = CdclConfig::default();
    let (race, _) = search.solve_mode_with(&config, SearchMode::Race);
    let race = race.expect("the race's CDCL lane is complete");
    assert_eq!(
        race.is_solvable(),
        reference.is_solvable(),
        "race diverges on {spec:?} at r = {rounds}"
    );
    // Local search is run only where a model exists: on UNSAT instances
    // it can do nothing but grind through its whole restart budget
    // (millions of moves under a debug build) before reporting the
    // indeterminate exhaustion the API already types as `None`.
    if reference.is_solvable() {
        let (local, _) = search.solve_mode_with(&config, SearchMode::Local);
        let local = local.expect("local search cracks SAT zoo instances");
        assert!(
            local.is_solvable(),
            "local search can only answer SAT, diverged on {spec:?} at r = {rounds}"
        );
    }
}

/// The lifted warm start must be a pure performance hint: seeding the
/// CDCL engine with the lift of the task's own `r−1` decision map (when
/// one exists) cannot change the `r`-round verdict.
fn warm_start_agrees(spec: &GsbSpec, rounds: usize) {
    let search = SymmetricSearch::new(spec.clone(), rounds);
    let reference = search.solve_reference();
    let parent = SymmetricSearch::new(spec.clone(), rounds - 1);
    let SearchResult::Solvable { assignment } = parent.solve_reference() else {
        return; // no r−1 map to lift
    };
    let map = DecisionMap::rebuild(spec.n(), rounds - 1, assignment)
        .expect("reference assignments align with the canonical class order");
    let config = CdclConfig {
        warm_start: Some(std::sync::Arc::new(search.lift_warm_start(&map))),
        ..CdclConfig::default()
    };
    let (warm, _) = search.solve_cdcl_with(&config);
    assert_eq!(
        warm.is_solvable(),
        reference.is_solvable(),
        "warm-started engine diverges on {spec:?} at r = {rounds}"
    );
}

#[test]
fn engines_agree_on_the_zoo() {
    for n in 2..=3 {
        for spec in zoo(n) {
            for rounds in 0..=1 {
                engines_agree(&spec, rounds);
            }
        }
    }
}

#[test]
fn search_modes_agree_on_the_zoo() {
    // n = 4 at r = 1 (χ(Δ³), 75 raw facets) is past the tiny-instance
    // cutoff, so the race and local paths genuinely run here.
    for n in 2..=4 {
        for spec in zoo(n) {
            modes_agree(&spec, 1);
        }
    }
}

#[test]
fn warm_started_engine_agrees_on_the_zoo() {
    for n in 2..=4 {
        for spec in zoo(n) {
            warm_start_agrees(&spec, 1);
        }
    }
}

#[test]
fn engines_agree_on_election_at_two_rounds() {
    // The asymmetric member at the largest feasible instance: no value
    // precedence, no value images — exercises the taint-free path.
    engines_agree(&GsbSpec::election(2).expect("well-formed"), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random feasible symmetric specs: both engines, both rounds.
    #[test]
    fn engines_agree_on_sampled_specs(
        n in 2usize..=3,
        m in 1usize..=5,
        l in 0usize..=2,
        du in 0usize..=3,
        rounds in 0usize..=1,
    ) {
        let u = (l + du).max(1);
        if let Ok(task) = SymmetricGsb::new(n, m, l, u) {
            if task.is_feasible() {
                engines_agree(&task.to_spec(), rounds);
            }
        }
    }
}
