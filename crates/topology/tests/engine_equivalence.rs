//! Equivalence of the decision-map search engines over a task zoo.
//!
//! The CDCL engine ([`SymmetricSearch::solve`]) must agree verdict-for-
//! verdict with the retained backtracking oracle
//! ([`SymmetricSearch::solve_reference`]) on every zoo task and on
//! property-sampled symmetric specs at `r ∈ {0, 1}` — with orbit
//! learning both on and off, so an unsound symmetry image would surface
//! as a divergence. SAT answers are additionally re-checked
//! facet-by-facet inside `solve_with` (a bad map panics there).

use gsb_core::{GsbSpec, SymmetricGsb};
use gsb_topology::{CdclConfig, SearchResult, SymmetricSearch};
use proptest::prelude::*;

/// Every named paper task at this `n` (the catalog already includes the
/// asymmetric members, e.g. election).
fn zoo(n: usize) -> Vec<GsbSpec> {
    gsb_core::zoo::catalog(n)
        .expect("zoo is well-formed")
        .into_iter()
        .map(|entry| entry.spec)
        .collect()
}

fn engines_agree(spec: &GsbSpec, rounds: usize) {
    let search = SymmetricSearch::new(spec.clone(), rounds);
    let reference = search.solve_reference();
    for symmetric_learning in [true, false] {
        let config = CdclConfig {
            symmetric_learning,
            ..CdclConfig::default()
        };
        // `solve_cdcl_with`, not the `solve_with` front door: the
        // production path routes tiny instances (most of this suite)
        // straight to the backtracking oracle, which would make the
        // CDCL-vs-oracle comparison vacuous.
        let (cdcl, _) = search.solve_cdcl_with(&config);
        assert_eq!(
            cdcl.is_solvable(),
            reference.is_solvable(),
            "engines diverge on {spec:?} at r = {rounds} \
             (symmetric_learning = {symmetric_learning})"
        );
        if let SearchResult::Solvable { assignment } = &cdcl {
            assert_eq!(assignment.len(), search.classes().len());
        }
    }
}

#[test]
fn engines_agree_on_the_zoo() {
    for n in 2..=3 {
        for spec in zoo(n) {
            for rounds in 0..=1 {
                engines_agree(&spec, rounds);
            }
        }
    }
}

#[test]
fn engines_agree_on_election_at_two_rounds() {
    // The asymmetric member at the largest feasible instance: no value
    // precedence, no value images — exercises the taint-free path.
    engines_agree(&GsbSpec::election(2).expect("well-formed"), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random feasible symmetric specs: both engines, both rounds.
    #[test]
    fn engines_agree_on_sampled_specs(
        n in 2usize..=3,
        m in 1usize..=5,
        l in 0usize..=2,
        du in 0usize..=3,
        rounds in 0usize..=1,
    ) {
        let u = (l + du).max(1);
        if let Ok(task) = SymmetricGsb::new(n, m, l, u) {
            if task.is_feasible() {
                engines_agree(&task.to_spec(), rounds);
            }
        }
    }
}
