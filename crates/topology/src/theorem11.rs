//! A mechanized **Theorem 11 certificate**: election is not solvable by
//! any symmetric decision map on `χ^r(Δ^{n−1})` — verified by checking
//! the *structure* of the complex rather than searching over maps.
//!
//! The paper's proof goes: (i) the protocol complex is a connected
//! pseudomanifold; (ii) in any map solving election, two facets sharing a
//! ridge give the *same* decision to their two private vertices (both
//! privates have the ridge's missing color; if the shared ridge already
//! contains the unique 1, both privates decide 2, otherwise both decide
//! 1); (iii) hence each process decides one fixed value in the whole
//! complex; (iv) solo corners are order-isomorphic, so a comparison-based
//! map gives all processes the same fixed value — contradicting "exactly
//! one process decides 1".
//!
//! [`election_impossibility_certificate`] checks the two structural facts
//! that make (ii)–(iv) go through:
//!
//! * **per-color linkage**: for every color, the graph on that color's
//!   vertices linking the private vertices of ridge-adjacent facets is
//!   connected (this yields step (iii)); and
//! * **corner symmetry**: the `n` solo corners share one view signature
//!   (this yields step (iv)).
//!
//! Unlike the search in [`solvability`](crate::solvability) — worst-case
//! exponential even with its CDCL engine — the certificate is polynomial
//! in the complex size, so it verifies Theorem 11 for every `(n, r)`
//! whose complex fits in memory (e.g. `n = 4, r = 1` with 75 facets, or
//! `n = 5, r = 1` with 541); where both run, the frontier tests
//! cross-check them against each other.

use std::collections::HashMap;

use crate::complex::{ridge_key, ChromaticComplex, RidgeKey, VertexId};
use crate::protocol::shared_protocol_complex;
use crate::views::View;

/// Why a certificate attempt failed (the structure did not support the
/// argument — *not* evidence that election is solvable).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertificateFailure {
    /// Some ridge is contained in more than two facets (not a
    /// pseudomanifold), so "the two private vertices" is ill-defined.
    NotPseudomanifold,
    /// The per-color linkage graph is disconnected for this color, so
    /// step (iii) (one fixed decision per process) does not follow.
    ColorLinkageDisconnected {
        /// The color whose vertices do not all link up.
        color: u32,
    },
    /// The solo corners are not all order-isomorphic, so step (iv) does
    /// not follow.
    CornersNotSymmetric,
    /// A color has no solo corner (malformed complex).
    MissingCorner {
        /// The color lacking a solo corner.
        color: u32,
    },
}

impl std::fmt::Display for CertificateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateFailure::NotPseudomanifold => {
                write!(f, "complex is not a pseudomanifold")
            }
            CertificateFailure::ColorLinkageDisconnected { color } => {
                write!(f, "per-color linkage disconnected for color {color}")
            }
            CertificateFailure::CornersNotSymmetric => {
                write!(f, "solo corners are not order-isomorphic")
            }
            CertificateFailure::MissingCorner { color } => {
                write!(f, "no solo corner for color {color}")
            }
        }
    }
}

/// Up to two private vertices sharing one ridge (the pseudomanifold
/// bound); a third arrival aborts the certificate.
#[derive(Debug, Default, Clone, Copy)]
struct RidgeSlot {
    count: u8,
    privates: [VertexId; 2],
}

impl RidgeSlot {
    /// Records another private vertex; `false` when the ridge already
    /// holds two (the complex is not a pseudomanifold).
    fn push(&mut self, v: VertexId) -> bool {
        if self.count >= 2 {
            return false;
        }
        self.privates[self.count as usize] = v;
        self.count += 1;
        true
    }

    /// The two privates of an interior ridge, if both are present.
    fn pair(&self) -> Option<(VertexId, VertexId)> {
        (self.count == 2).then(|| (self.privates[0], self.privates[1]))
    }
}

/// Checks the Theorem 11 certificate on an explicit complex.
///
/// On success, election (one process decides 1, the rest 2) admits **no**
/// symmetric decision map on this complex — for `χ^r(Δ^{n−1})` this is
/// exactly "no `r`-round comparison-based IIS protocol elects a leader".
///
/// # Errors
///
/// Returns the first [`CertificateFailure`] encountered; see its variants
/// for what each means.
pub fn check_election_certificate(complex: &ChromaticComplex) -> Result<(), CertificateFailure> {
    let n = complex.n();
    // Build ridge → private-vertex incidence, keyed by the exact packed
    // ridge key (no per-ridge id-vector allocation). A ridge meets at
    // most two facets in a pseudomanifold, so two slots suffice.
    let mut ridge_privates: HashMap<RidgeKey, RidgeSlot> = HashMap::new();
    for facet in complex.facets() {
        for skip in 0..facet.len() {
            let private = facet[skip];
            let slot = ridge_privates.entry(ridge_key(facet, skip)).or_default();
            if !slot.push(private) {
                return Err(CertificateFailure::NotPseudomanifold);
            }
        }
    }
    // Per-color union-find over vertices, linked through interior ridges.
    let vertex_count = complex.vertices().len();
    let mut parent: Vec<u32> = (0..vertex_count as u32).collect();
    // Iterative path-halving find: every other node on the walk is
    // re-pointed at its grandparent, so trees stay shallow without the
    // recursion the seed used (a stack-overflow risk on large complexes).
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let grandparent = parent[parent[x as usize] as usize];
            parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }
    for slot in ridge_privates.values() {
        if let Some((a, b)) = slot.pair() {
            debug_assert_eq!(
                complex.vertices()[a as usize].color,
                complex.vertices()[b as usize].color,
                "private vertices carry the ridge's missing color"
            );
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra as usize] = rb;
        }
    }
    for color in 1..=n as u32 {
        let mut members =
            (0..vertex_count as u32).filter(|&v| complex.vertices()[v as usize].color == color);
        let Some(first) = members.next() else {
            return Err(CertificateFailure::MissingCorner { color });
        };
        let root = find(&mut parent, first);
        for v in members {
            if find(&mut parent, v) != root {
                return Err(CertificateFailure::ColorLinkageDisconnected { color });
            }
        }
    }
    // Corner symmetry: one signature shared by all solo corners. A solo
    // corner is the vertex whose view mentions only its own identity.
    let mut corner_signatures: Vec<View> = Vec::new();
    for color in 1..=n as u32 {
        let corner = complex
            .vertices()
            .iter()
            .find(|v| v.color == color && v.view.id_support().len() == 1);
        match corner {
            Some(v) => corner_signatures.push(v.view.signature()),
            None => return Err(CertificateFailure::MissingCorner { color }),
        }
    }
    if corner_signatures.windows(2).any(|w| w[0] != w[1]) {
        return Err(CertificateFailure::CornersNotSymmetric);
    }
    Ok(())
}

/// Convenience: certify Theorem 11 for the `r`-round IIS protocol complex
/// on `n ≥ 2` processes.
///
/// # Errors
///
/// Propagates [`CertificateFailure`] from
/// [`check_election_certificate`]; complexes built by
/// [`crate::protocol::protocol_complex`] are expected to always pass.
/// The complex comes from the process-wide [`shared_protocol_complex`]
/// memo, so repeated certificates at one `(n, r)` share a single build.
pub fn election_impossibility_certificate(
    n: usize,
    rounds: usize,
) -> Result<(), CertificateFailure> {
    let complex = shared_protocol_complex(n, rounds);
    check_election_certificate(&complex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Vertex;

    #[test]
    fn certificate_holds_for_small_complexes() {
        // Beyond the search's reach: n = 4 (75 facets) and n = 5 (541)
        // certify in milliseconds.
        for (n, r) in [
            (2usize, 1usize),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (4, 1),
            (5, 1),
        ] {
            election_impossibility_certificate(n, r).unwrap_or_else(|e| panic!("n={n} r={r}: {e}"));
        }
    }

    #[test]
    fn certificate_agrees_with_the_search() {
        // Where the DPLL search runs, both methods must agree that
        // election is unsolvable.
        use crate::solvability::SymmetricSearch;
        for (n, r) in [(2usize, 1usize), (2, 2), (3, 1), (3, 2)] {
            assert!(election_impossibility_certificate(n, r).is_ok());
            let spec = gsb_core::GsbSpec::election(n).unwrap();
            assert!(
                !SymmetricSearch::new(spec, r).solve().is_solvable(),
                "n={n} r={r}"
            );
        }
    }

    #[test]
    fn certificate_rejects_a_disconnected_complex() {
        // Two disjoint edges (n = 2): color linkage cannot connect.
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(Vertex {
            color: 1,
            view: View::one_round(1, &[1]),
        });
        let b = c.intern(Vertex {
            color: 2,
            view: View::one_round(2, &[2]),
        });
        let d = c.intern(Vertex {
            color: 1,
            view: View::one_round(1, &[1, 2]),
        });
        let e = c.intern(Vertex {
            color: 2,
            view: View::one_round(2, &[1, 2]),
        });
        c.add_facet(vec![a, b]);
        c.add_facet(vec![d, e]);
        let err = check_election_certificate(&c).unwrap_err();
        assert!(matches!(
            err,
            CertificateFailure::ColorLinkageDisconnected { .. }
        ));
    }

    #[test]
    fn certificate_failure_messages_are_informative() {
        let err = CertificateFailure::ColorLinkageDisconnected { color: 2 };
        assert!(err.to_string().contains("color 2"));
        assert!(!CertificateFailure::NotPseudomanifold.to_string().is_empty());
    }
}
