//! Conflict-driven search for symmetric decision maps.
//!
//! The quotiented solvability instance — "assign each view-signature
//! class a value in `1..m` so every facet's value multiset falls inside
//! the spec's per-value windows" — is solved here as a CDCL
//! (conflict-driven clause-learning) problem instead of the seed's plain
//! backtracking:
//!
//! * **Encoding.** Boolean variable `x_{c,v}` ⟺ "class `c` decides value
//!   `v`". At-least-one and pairwise at-most-one clauses make the
//!   per-class domain exact; facet cardinality windows stay *native*
//!   (counter propagators that explain their implications as clauses on
//!   demand), so no cardinality-to-CNF blow-up is ever materialized.
//! * **Propagation.** Clausal constraints (domain clauses, value
//!   precedence, learned clauses) use the classic two-watched-literal
//!   scheme; facet windows keep per-`(facet, value)` assigned/forbidden
//!   weight counters that fire upper-saturation and lower-deficit
//!   implications with eagerly materialized reason clauses.
//! * **Learning.** First-UIP conflict analysis with VSIDS-style variable
//!   activities (seeded by facet-occurrence `class_weight`, decayed
//!   geometrically), phase saving, Luby restarts, and LBD-guarded
//!   learned-clause reduction.
//! * **Orbit pruning.** Each learned clause that was derived purely from
//!   symmetry-invariant constraints (taint tracking over antecedents)
//!   is replayed through the instance's verified symmetries — the
//!   order-reversal class permutation of the view-signature quotient and,
//!   for fully symmetric specs, adjacent value transpositions — so one
//!   conflict prunes its entire (small) orbit. Value-interchangeable
//!   specs additionally get static value-precedence breaking; clauses
//!   touching those constraints are tainted and never imaged.
//! * **Portfolio.** [`solve_portfolio`] fans diversified configurations
//!   (seed, phase, restart cadence, random-decision rate) across scoped
//!   threads — sized by `rayon::current_num_threads()`, which honors
//!   `RAYON_NUM_THREADS`, so the 1-core container runs exactly one
//!   deterministic solver — with first-finisher-wins cancellation and
//!   optional sharing of short learned clauses.
//!
//! The seed's backtracking engine is retained in
//! [`solvability`](crate::solvability) as the reference oracle; the
//! equivalence of the two engines is property-tested over a task zoo.

use gsb_core::govern::Ticket;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The quotiented decision-map instance handed to the CDCL engine.
///
/// Built by [`SymmetricSearch`](crate::solvability::SymmetricSearch);
/// all constraint soundness obligations (facet windows, symmetry
/// verification, precedence applicability) are discharged there.
/// `PartialEq` backs the orbit-vs-full byte-identity equivalence test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Instance {
    /// Number of symmetry classes (`k`).
    pub classes: usize,
    /// Number of output values (`m`).
    pub values: usize,
    /// Per-value lower window bound, indexed by `v − 1`.
    pub lower: Vec<u32>,
    /// Per-value upper window bound, indexed by `v − 1`.
    pub upper: Vec<u32>,
    /// Facet constraints as `(class, multiplicity)` runs (classes
    /// strictly increasing within a facet; multiplicities sum to `n`).
    pub facets: Vec<Vec<(u32, u32)>>,
    /// Facet-occurrence weight per class (VSIDS seeding).
    pub class_weight: Vec<usize>,
    /// Whether all values are interchangeable (`spec.is_symmetric()`):
    /// gates value-precedence breaking and value-transposition images.
    pub value_symmetric: bool,
    /// Class order used for value-precedence breaking (weight-descending,
    /// mirroring the reference engine's branching order).
    pub precedence_order: Vec<u32>,
    /// Verified class permutations (beyond identity) under which the
    /// facet family is invariant — the view-signature symmetries.
    pub class_perms: Vec<Vec<u32>>,
}

/// Tuning knobs of one CDCL solver; the portfolio diversifies these.
#[derive(Debug, Clone)]
pub struct CdclConfig {
    /// Seed of the solver's xorshift RNG (random decisions, jitter).
    pub seed: u64,
    /// Initial saved phase used for branching decisions.
    pub default_phase: bool,
    /// Luby restart unit, in conflicts.
    pub restart_base: u64,
    /// Percentage (`0..100`) of decisions taken on a random variable.
    pub random_decision_pct: u32,
    /// Whether to learn orbit images of symmetric conflict clauses.
    pub symmetric_learning: bool,
    /// Longest clause replayed through the symmetry group.
    pub symmetric_image_max_len: usize,
    /// Whether to jitter initial activities (portfolio diversity).
    pub activity_jitter: bool,
    /// Whether portfolio members exchange short learned clauses.
    pub share_learned: bool,
    /// Longest clause exported to the portfolio pool.
    pub share_max_len: usize,
    /// Whether branching works at class granularity: a VSIDS pick with
    /// a positive saved phase decides a *value* for its whole class
    /// (positive literal), then queues the class's verified-symmetry
    /// orbit companions as the next decisions at the same value — one
    /// conceptual decision per orbit instead of one per variable.
    ///
    /// Off by default: on the refutation-heavy frontier instances the
    /// class-granularity bursts override the phase-saving order VSIDS
    /// refutes fastest under (measured ≈1.5–4× more conflicts on the
    /// `wsb(3)` `r = 3` UNSAT certificate, depending on the gate), and
    /// the verified orbits stay tiny (the signature quotient admits
    /// only the value-order reversal). The toggle stays for SAT-leaning
    /// warm-started dives and for A/B runs via `--search-mode`.
    pub orbit_decisions: bool,
    /// Per-class warm-start values (`1..=m`, `0` = unseeded), lifted
    /// from the previous round's decision map. Seeds preset saved
    /// phases and boost initial VSIDS activity; they never constrain
    /// the search, so verdicts are unaffected.
    pub warm_start: Option<std::sync::Arc<Vec<u32>>>,
}

impl Default for CdclConfig {
    fn default() -> Self {
        CdclConfig {
            seed: 0x9E37_79B9_7F4A_7C15,
            default_phase: false,
            restart_base: 64,
            random_decision_pct: 2,
            symmetric_learning: true,
            symmetric_image_max_len: 16,
            activity_jitter: false,
            share_learned: true,
            share_max_len: 8,
            orbit_decisions: false,
            warm_start: None,
        }
    }
}

/// Counters reported by one solve (the portfolio returns the winner's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Branching decisions taken.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned from conflicts.
    pub learned: u64,
    /// Learned clauses added as symmetry-orbit images.
    pub symmetric_images: u64,
    /// Clauses imported from the portfolio pool.
    pub imported: u64,
    /// Learned clauses deleted by DB reduction.
    pub deleted: u64,
    /// Orbit-companion decisions taken by class-granularity branching
    /// (a subset of `decisions`).
    pub orbit_decisions: u64,
    /// Classes whose initial phase came from a lifted warm start.
    pub warm_seeded: u64,
    /// Min-conflicts moves performed by the local-search member
    /// (completion-race and local modes only).
    pub local_steps: u64,
    /// Seeded restarts performed by the local-search member.
    pub local_restarts: u64,
    /// Whether the local-search member produced the winning assignment.
    pub local_won: bool,
    /// Portfolio workers that ran (1 outside portfolio mode).
    pub workers: usize,
}

/// Outcome of a CDCL run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CdclResult {
    /// A satisfying decision map: value (`1..=m`) per class.
    Sat(Vec<usize>),
    /// The instance admits no decision map.
    Unsat,
    /// Another portfolio member finished first.
    Interrupted,
}

/// A literal over the `x_{c,v}` variables, `code = var · 2 + negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Lit(u32);

impl Lit {
    fn new(var: u32, positive: bool) -> Lit {
        Lit(var << 1 | u32::from(!positive))
    }
    fn var(self) -> u32 {
        self.0 >> 1
    }
    fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }
    fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }
    fn code(self) -> usize {
        self.0 as usize
    }
}

const UNDEF: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

/// Why a variable is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Branching decision (or root fact).
    None,
    /// Propagated by the clause at this index (implied lit at `lits[0]`).
    Clause(u32),
    /// Propagated by a facet window; the eagerly materialized reason
    /// clause lives at this index of the explanation arena.
    Explained(u32),
}

/// xorshift64* — deterministic, dependency-free randomness.
#[derive(Debug)]
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    /// Derived purely from symmetry-invariant constraints (see module
    /// docs); only such clauses may be replayed through the group.
    symmetric: bool,
    lbd: u32,
    deleted: bool,
}

/// Indexed binary max-heap over variable activities (MiniSat's order).
#[derive(Debug)]
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarOrder {
    fn new(nvars: usize) -> VarOrder {
        VarOrder {
            heap: Vec::with_capacity(nvars),
            pos: vec![ABSENT; nvars],
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bump(&mut self, v: u32, act: &[f64]) {
        let p = self.pos[v as usize];
        if p != ABSENT {
            self.sift_up(p as usize, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }
}

/// Pool of short learned clauses exchanged between portfolio members.
#[derive(Debug, Default)]
pub(crate) struct SharedPool {
    clauses: Mutex<Vec<(Vec<Lit>, bool)>>,
}

impl SharedPool {
    fn export(&self, lits: Vec<Lit>, symmetric: bool) {
        self.clauses
            .lock()
            .expect("pool poisoned")
            .push((lits, symmetric));
    }

    fn import_from(&self, cursor: usize) -> Vec<(Vec<Lit>, bool)> {
        let pool = self.clauses.lock().expect("pool poisoned");
        pool[cursor.min(pool.len())..].to_vec()
    }
}

struct Solver<'a> {
    inst: &'a Instance,
    cfg: CdclConfig,
    nvars: usize,
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>,
    value: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    /// For variables assigned at level 0: whether the root fact's
    /// derivation touched a non-symmetric constraint. Conflict analysis
    /// silently drops level-0 literals, so learned clauses must inherit
    /// this taint or orbit images of them would be unsound.
    root_tainted: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    saved_phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    explanations: Vec<Vec<Lit>>,
    expl_lim: Vec<usize>,
    /// Per-`(facet, value)` weight assigned to the value / forbidden it.
    true_w: Vec<u32>,
    false_w: Vec<u32>,
    /// Facets containing each class, with the class's multiplicity.
    class_facets: Vec<Vec<(u32, u32)>>,
    /// Total weight (`n`) of each facet.
    facet_total: Vec<u32>,
    seen: Vec<bool>,
    rng: XorShift,
    /// Class orbits under the verified symmetry group, CSR-packed
    /// (`orbit_data[orbit_offsets[o]..orbit_offsets[o + 1]]`); empty
    /// when orbit-guided branching is off or no symmetry was verified.
    orbit_offsets: Vec<u32>,
    orbit_data: Vec<u32>,
    /// Orbit id of each class (aligned with `orbit_offsets`).
    orbit_of: Vec<u32>,
    /// Companion decisions queued by the last class decision: variables
    /// to branch true next while still unassigned.
    orbit_queue: std::collections::VecDeque<u32>,
    /// Variable permutations of the verified symmetry group (identity
    /// excluded), used to replay symmetric learned clauses.
    var_maps: Vec<Vec<u32>>,
    pending: Vec<(Vec<Lit>, bool)>,
    image_seen: HashSet<Vec<Lit>>,
    learned_live: usize,
    learned_limit: usize,
    pool_cursor: usize,
    /// Set when input installation already refutes the instance (a unit
    /// conflict or a facet whose lower window exceeds its weight).
    root_conflict: bool,
    stats: SearchStats,
}

impl<'a> Solver<'a> {
    fn var_of(&self, class: u32, value_index: usize) -> u32 {
        class * self.inst.values as u32 + value_index as u32
    }

    fn new(inst: &'a Instance, cfg: CdclConfig) -> Solver<'a> {
        let m = inst.values;
        let nvars = inst.classes * m;
        let mut class_facets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); inst.classes];
        let mut facet_total = vec![0u32; inst.facets.len()];
        for (f, facet) in inst.facets.iter().enumerate() {
            for &(c, mult) in facet {
                class_facets[c as usize].push((f as u32, mult));
                facet_total[f] += mult;
            }
        }
        let mut rng = XorShift(cfg.seed | 1);
        let max_weight = inst.class_weight.iter().copied().max().unwrap_or(1).max(1);
        let mut activity = vec![0.0f64; nvars];
        for c in 0..inst.classes {
            let base = inst.class_weight[c] as f64 / max_weight as f64;
            for vi in 0..m {
                let jitter = if cfg.activity_jitter {
                    1.0 + (rng.next() % 1000) as f64 / 10_000.0
                } else {
                    1.0
                };
                activity[c * m + vi] = base * jitter;
            }
        }
        // Warm-start seeds lift the previous round's decision map into
        // initial phases and a VSIDS boost: seeded variables start on
        // top of the order with a positive saved phase, so the first
        // dive replays the lifted solution. Pure heuristic — verdicts
        // are unaffected.
        let mut saved_phase = vec![cfg.default_phase; nvars];
        let mut warm_seeded = 0u64;
        if let Some(seed) = cfg.warm_start.as_deref() {
            if seed.len() == inst.classes {
                for (c, &val) in seed.iter().enumerate() {
                    if (1..=m as u32).contains(&val) {
                        warm_seeded += 1;
                        let var = c * m + (val - 1) as usize;
                        saved_phase[var] = true;
                        activity[var] += 2.0;
                    }
                }
            }
        }
        let mut order = VarOrder::new(nvars);
        for v in 0..nvars as u32 {
            order.insert(v, &activity);
        }
        let var_maps = build_var_maps(inst, m);
        let (orbit_offsets, orbit_data, orbit_of) = if cfg.orbit_decisions {
            build_class_orbits(inst.classes, &inst.class_perms)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let mut solver = Solver {
            inst,
            nvars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); nvars * 2],
            value: vec![UNDEF; nvars],
            level: vec![0; nvars],
            reason: vec![Reason::None; nvars],
            root_tainted: vec![false; nvars],
            activity,
            var_inc: 1.0,
            order,
            saved_phase,
            trail: Vec::with_capacity(nvars),
            trail_lim: Vec::new(),
            qhead: 0,
            explanations: Vec::new(),
            expl_lim: Vec::new(),
            true_w: vec![0; inst.facets.len() * m],
            false_w: vec![0; inst.facets.len() * m],
            class_facets,
            facet_total,
            seen: vec![false; nvars],
            rng,
            orbit_offsets,
            orbit_data,
            orbit_of,
            orbit_queue: std::collections::VecDeque::new(),
            var_maps,
            pending: Vec::new(),
            image_seen: HashSet::new(),
            learned_live: 0,
            learned_limit: 4000,
            pool_cursor: 0,
            root_conflict: false,
            stats: SearchStats {
                warm_seeded,
                ..SearchStats::default()
            },
            cfg,
        };
        // A facet whose lower window exceeds its total weight can never
        // be satisfied, and — with `m = 1` — never produces the false
        // literals the counter propagators watch; refute it up front.
        if let Some(&min_total) = solver.facet_total.iter().min() {
            if solver.inst.lower.iter().any(|&l| l > min_total) {
                solver.root_conflict = true;
            }
        }
        solver.install_domain_constraints();
        solver
    }

    /// At-least-one / at-most-one domain clauses, plus value-precedence
    /// breaking for interchangeable values (tainted: `symmetric = false`).
    fn install_domain_constraints(&mut self) {
        let m = self.inst.values;
        for c in 0..self.inst.classes as u32 {
            let alo: Vec<Lit> = (0..m)
                .map(|vi| Lit::new(self.var_of(c, vi), true))
                .collect();
            self.add_input_clause(alo, true);
            for vi in 0..m {
                for wi in vi + 1..m {
                    self.add_input_clause(
                        vec![
                            Lit::new(self.var_of(c, vi), false),
                            Lit::new(self.var_of(c, wi), false),
                        ],
                        true,
                    );
                }
            }
        }
        if self.inst.value_symmetric && m >= 2 {
            // Value v may first appear at position t of the precedence
            // order only after v−1 appeared strictly earlier: with fully
            // interchangeable values every solution has a relabelling
            // whose first occurrences come in value order.
            let order = self.inst.precedence_order.clone();
            for (t, &c) in order.iter().enumerate() {
                for vi in 1..m {
                    let mut lits = vec![Lit::new(self.var_of(c, vi), false)];
                    lits.extend(
                        order[..t]
                            .iter()
                            .map(|&c2| Lit::new(self.var_of(c2, vi - 1), true)),
                    );
                    self.add_input_clause(lits, false);
                }
            }
        }
    }

    /// Installs an input clause at level 0 (before search starts).
    fn add_input_clause(&mut self, lits: Vec<Lit>, symmetric: bool) {
        debug_assert!(self.trail_lim.is_empty());
        match lits.len() {
            0 => unreachable!("input clauses are non-empty"),
            1 => {
                // Root fact; a contradicting unit refutes the instance.
                if !self.enqueue_root(lits[0], !symmetric) {
                    self.root_conflict = true;
                }
            }
            _ => {
                self.attach_clause(lits, false, symmetric, 0);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool, symmetric: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        if learned {
            self.learned_live += 1;
        }
        self.clauses.push(Clause {
            lits,
            learned,
            symmetric,
            lbd,
            deleted: false,
        });
        cref
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn lit_value(&self, lit: Lit) -> u8 {
        match self.value[lit.var() as usize] {
            UNDEF => UNDEF,
            v => {
                if (v == TRUE) == lit.is_positive() {
                    TRUE
                } else {
                    FALSE
                }
            }
        }
    }

    /// Assigns `lit` (updating facet counters) unless already decided;
    /// `false` means `lit` is currently false (the caller has a conflict
    /// discovered outside the propagation queue — only possible for root
    /// facts and pending-clause absorption at level 0).
    fn enqueue(&mut self, lit: Lit, reason: Reason) -> bool {
        match self.lit_value(lit) {
            TRUE => true,
            FALSE => false,
            _ => {
                let var = lit.var() as usize;
                let root = self.trail_lim.is_empty();
                if root {
                    self.root_tainted[var] = self.reason_root_taint(lit, reason);
                }
                self.value[var] = if lit.is_positive() { TRUE } else { FALSE };
                self.level[var] = self.decision_level() as u32;
                self.reason[var] = reason;
                self.trail.push(lit);
                // Counters move at enqueue (and symmetrically at undo) so
                // trail and counters never disagree; threshold checks run
                // when the literal is dequeued.
                let m = self.inst.values;
                let (c, vi) = ((lit.var() as usize) / m, (lit.var() as usize) % m);
                let w = if lit.is_positive() {
                    &mut self.true_w
                } else {
                    &mut self.false_w
                };
                for &(f, mult) in &self.class_facets[c] {
                    w[f as usize * m + vi] += mult;
                }
                true
            }
        }
    }

    /// Taint of a fresh level-0 assignment: the propagating constraint's
    /// own taint, or-ed with the taint of the root facts it leans on.
    /// `Reason::None` roots are conservatively tainted — callers with
    /// exact knowledge use [`enqueue_root`](Self::enqueue_root).
    fn reason_root_taint(&self, lit: Lit, reason: Reason) -> bool {
        let others_tainted = |lits: &[Lit]| {
            lits.iter()
                .any(|&l| l.var() != lit.var() && self.root_tainted[l.var() as usize])
        };
        match reason {
            Reason::None => true,
            Reason::Clause(cref) => {
                let clause = &self.clauses[cref as usize];
                !clause.symmetric || others_tainted(&clause.lits)
            }
            Reason::Explained(idx) => others_tainted(&self.explanations[idx as usize]),
        }
    }

    /// Enqueues a level-0 fact with an explicit taint (input units,
    /// learned units, absorbed pending units).
    fn enqueue_root(&mut self, lit: Lit, tainted: bool) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        let fresh = self.lit_value(lit) == UNDEF;
        let ok = self.enqueue(lit, Reason::None);
        if ok && fresh {
            self.root_tainted[lit.var() as usize] = tainted;
        }
        ok
    }

    fn assume(&mut self, lit: Lit) {
        self.trail_lim.push(self.trail.len());
        self.expl_lim.push(self.explanations.len());
        let ok = self.enqueue(lit, Reason::None);
        debug_assert!(ok, "decisions pick unassigned variables");
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let m = self.inst.values;
        let keep = self.trail_lim[target];
        while self.trail.len() > keep {
            let lit = self.trail.pop().expect("non-empty trail");
            let var = lit.var() as usize;
            let (c, vi) = (var / m, var % m);
            let w = if lit.is_positive() {
                &mut self.true_w
            } else {
                &mut self.false_w
            };
            for &(f, mult) in &self.class_facets[c] {
                w[f as usize * m + vi] -= mult;
            }
            self.value[var] = UNDEF;
            self.reason[var] = Reason::None;
            self.saved_phase[var] = lit.is_positive();
            self.order.insert(lit.var(), &self.activity);
        }
        self.qhead = keep;
        self.explanations.truncate(self.expl_lim[target]);
        self.trail_lim.truncate(target);
        self.expl_lim.truncate(target);
    }

    /// Propagates to fixpoint; a conflict comes back as the violated
    /// clause's literals (all false) plus its symmetry taint.
    fn propagate(&mut self) -> Option<(Vec<Lit>, bool)> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            if let Some(conflict) = self.propagate_facets(lit) {
                return Some(conflict);
            }
            if let Some(conflict) = self.propagate_watches(lit) {
                return Some(conflict);
            }
        }
        None
    }

    /// Threshold checks for every facet containing the class of `lit`.
    ///
    /// Counters were already moved at enqueue time; this pass only fires
    /// conflicts and implications. Implied literals always concern a
    /// *different* class of the same facet (the dequeued class is
    /// assigned on this value), and the implied polarity updates the
    /// opposite counter, so thresholds are stable across the scan.
    fn propagate_facets(&mut self, lit: Lit) -> Option<(Vec<Lit>, bool)> {
        let m = self.inst.values;
        let var = lit.var() as usize;
        let (c, vi) = (var / m, var % m);
        for k in 0..self.class_facets[c].len() {
            let (f, _) = self.class_facets[c][k];
            let fi = f as usize;
            let idx = fi * m + vi;
            if lit.is_positive() {
                // Σ mult(c')·x_{c',v} ≤ u_v: saturation forbids the value
                // for the facet's remaining classes.
                let u = self.inst.upper[vi];
                if self.true_w[idx] > u {
                    return Some((self.upper_reason(fi, vi, None), true));
                }
                for j in 0..self.inst.facets[fi].len() {
                    let (c2, mult2) = self.inst.facets[fi][j];
                    let v2 = Lit::new(self.var_of(c2, vi), false);
                    if self.lit_value(v2) == UNDEF && self.true_w[idx] + mult2 > u {
                        let expl = self.upper_reason(fi, vi, Some(v2));
                        let idx_e = self.push_explanation(expl);
                        let ok = self.enqueue(v2, Reason::Explained(idx_e));
                        debug_assert!(ok);
                    }
                }
            } else {
                // Σ mult(c')·x_{c',v} ≥ l_v ⇔ forbidden weight ≤ n − l_v:
                // a deficit forces the value on the remaining classes.
                let slack = self.facet_total[fi] - self.inst.lower[vi].min(self.facet_total[fi]);
                if self.false_w[idx] > slack {
                    return Some((self.lower_reason(fi, vi, None), true));
                }
                for j in 0..self.inst.facets[fi].len() {
                    let (c2, mult2) = self.inst.facets[fi][j];
                    let v2 = Lit::new(self.var_of(c2, vi), true);
                    if self.lit_value(v2) == UNDEF && self.false_w[idx] + mult2 > slack {
                        let expl = self.lower_reason(fi, vi, Some(v2));
                        let idx_e = self.push_explanation(expl);
                        let ok = self.enqueue(v2, Reason::Explained(idx_e));
                        debug_assert!(ok);
                    }
                }
            }
        }
        None
    }

    /// Reason clause for an upper-window event on `(facet, value)`: the
    /// implied literal (if any) followed by the negations of the
    /// assignments that saturated the window.
    fn upper_reason(&self, f: usize, vi: usize, implied: Option<Lit>) -> Vec<Lit> {
        let mut lits = Vec::new();
        lits.extend(implied);
        for &(c2, _) in &self.inst.facets[f] {
            let x = Lit::new(self.var_of(c2, vi), true);
            if self.lit_value(x) == TRUE {
                lits.push(x.negated());
            }
        }
        lits
    }

    /// Reason clause for a lower-window event on `(facet, value)`.
    fn lower_reason(&self, f: usize, vi: usize, implied: Option<Lit>) -> Vec<Lit> {
        let mut lits = Vec::new();
        lits.extend(implied);
        for &(c2, _) in &self.inst.facets[f] {
            let x = Lit::new(self.var_of(c2, vi), true);
            if self.lit_value(x) == FALSE {
                lits.push(x);
            }
        }
        lits
    }

    fn push_explanation(&mut self, lits: Vec<Lit>) -> u32 {
        let idx = self.explanations.len() as u32;
        self.explanations.push(lits);
        idx
    }

    /// Two-watched-literal clause propagation for a newly true `lit`.
    fn propagate_watches(&mut self, lit: Lit) -> Option<(Vec<Lit>, bool)> {
        let false_lit = lit.negated();
        let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
        let mut i = 0;
        let mut conflict = None;
        'next_clause: while i < ws.len() {
            let cref = ws[i];
            if self.clauses[cref as usize].deleted {
                ws.swap_remove(i);
                continue;
            }
            // Normalize: the false watcher sits at position 1.
            {
                let lits = &mut self.clauses[cref as usize].lits;
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
            }
            let first = self.clauses[cref as usize].lits[0];
            if self.lit_value(first) == TRUE {
                i += 1;
                continue;
            }
            // Look for a non-false replacement watch.
            let len = self.clauses[cref as usize].lits.len();
            for j in 2..len {
                let lj = self.clauses[cref as usize].lits[j];
                if self.lit_value(lj) != FALSE {
                    let lits = &mut self.clauses[cref as usize].lits;
                    lits.swap(1, j);
                    self.watches[lj.code()].push(cref);
                    ws.swap_remove(i);
                    continue 'next_clause;
                }
            }
            // Unit or conflicting.
            if self.lit_value(first) == UNDEF {
                let ok = self.enqueue(first, Reason::Clause(cref));
                debug_assert!(ok);
                i += 1;
            } else {
                let clause = &self.clauses[cref as usize];
                conflict = Some((clause.lits.clone(), clause.symmetric));
                break;
            }
        }
        let watched = &mut self.watches[false_lit.code()];
        debug_assert!(watched.is_empty());
        *watched = ws;
        conflict
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v, &self.activity);
    }

    fn reason_lits(&self, var: u32) -> (Vec<Lit>, bool) {
        match self.reason[var as usize] {
            Reason::None => unreachable!("decisions are never resolved"),
            Reason::Clause(cref) => {
                let clause = &self.clauses[cref as usize];
                (clause.lits.clone(), clause.symmetric)
            }
            Reason::Explained(idx) => (self.explanations[idx as usize].clone(), true),
        }
    }

    /// First-UIP analysis; returns the learned clause (asserting literal
    /// first, a max-level literal second), backtrack level, LBD, and the
    /// clause's symmetry taint.
    fn analyze(&mut self, conflict: (Vec<Lit>, bool)) -> (Vec<Lit>, usize, u32, bool) {
        let current = self.decision_level() as u32;
        let mut learnt: Vec<Lit> = vec![Lit(0)];
        let mut symmetric = conflict.1;
        let mut reason = conflict.0;
        let mut skip_first = false;
        let mut path = 0usize;
        let mut index = self.trail.len();
        let p;
        loop {
            for (i, &q) in reason.iter().enumerate() {
                if skip_first && i == 0 {
                    continue;
                }
                let v = q.var() as usize;
                if self.level[v] == 0 {
                    // The root fact is silently resolved away; the clause
                    // still *depends* on it, so its taint must flow into
                    // the learned clause (or orbit images would be
                    // implied only by the tainted system).
                    symmetric &= !self.root_tainted[v];
                } else if !self.seen[v] {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == current {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pivot = self.trail[index];
            self.seen[pivot.var() as usize] = false;
            path -= 1;
            if path == 0 {
                p = pivot;
                break;
            }
            let (r, r_sym) = self.reason_lits(pivot.var());
            debug_assert_eq!(r[0], pivot, "implied literal leads its reason");
            symmetric &= r_sym;
            reason = r;
            skip_first = true;
        }
        learnt[0] = p.negated();
        for &q in &learnt[1..] {
            self.seen[q.var() as usize] = false;
        }
        // Backtrack level: the highest level below `current` in the
        // clause; its literal moves to the second watch position.
        let mut backtrack = 0usize;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            backtrack = self.level[learnt[1].var() as usize] as usize;
        }
        let mut levels: Vec<u32> = learnt
            .iter()
            .map(|l| self.level[l.var() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        (learnt, backtrack, levels.len() as u32, symmetric)
    }

    /// Installs a learned clause (after backtracking), exports it to the
    /// portfolio pool, and queues its symmetry-orbit images.
    fn record(&mut self, learnt: Vec<Lit>, lbd: u32, symmetric: bool, pool: Option<&SharedPool>) {
        self.stats.learned += 1;
        if learnt.len() == 1 {
            let ok = self.enqueue_root(learnt[0], !symmetric);
            debug_assert!(ok, "asserting literal is unassigned after backtrack");
        } else {
            let cref = self.attach_clause(learnt.clone(), true, symmetric, lbd);
            let ok = self.enqueue(learnt[0], Reason::Clause(cref));
            debug_assert!(ok, "asserting literal is unassigned after backtrack");
        }
        // Every own clause goes into the dedup set, so pool imports never
        // hand this solver back its own exports as duplicates.
        let mut canonical = learnt.clone();
        canonical.sort_unstable();
        self.image_seen.insert(canonical);
        if let Some(pool) = pool {
            if self.cfg.share_learned && learnt.len() <= self.cfg.share_max_len {
                pool.export(learnt.clone(), symmetric);
            }
        }
        if symmetric
            && self.cfg.symmetric_learning
            && learnt.len() <= self.cfg.symmetric_image_max_len
        {
            for map_index in 0..self.var_maps.len() {
                let mut image: Vec<Lit> = learnt
                    .iter()
                    .map(|l| Lit::new(self.var_maps[map_index][l.var() as usize], l.is_positive()))
                    .collect();
                image.sort_unstable();
                image.dedup();
                if self.image_seen.insert(image.clone()) {
                    self.pending.push((image, true));
                }
            }
        }
    }

    /// Absorbs queued clauses (symmetry images, portfolio imports) at
    /// decision level 0; `false` means the instance is now UNSAT.
    fn absorb_pending(&mut self, pool: Option<&SharedPool>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if let Some(pool) = pool {
            if self.cfg.share_learned {
                let imported = pool.import_from(self.pool_cursor);
                self.pool_cursor += imported.len();
                for (lits, symmetric) in imported {
                    let mut canonical = lits.clone();
                    canonical.sort_unstable();
                    if self.image_seen.insert(canonical) {
                        self.stats.imported += 1;
                        self.pending.push((lits, symmetric));
                    }
                }
            }
        }
        let pending = std::mem::take(&mut self.pending);
        for (lits, mut symmetric) in pending {
            let mut reduced: Vec<Lit> = Vec::with_capacity(lits.len());
            let mut satisfied = false;
            for &l in &lits {
                match self.lit_value(l) {
                    TRUE => {
                        satisfied = true;
                        break;
                    }
                    FALSE => {
                        // Simplified away against a root fact: the stored
                        // clause depends on it, so inherit its taint.
                        symmetric &= !self.root_tainted[l.var() as usize];
                    }
                    _ => reduced.push(l),
                }
            }
            if satisfied {
                continue;
            }
            match reduced.len() {
                0 => return false,
                1 => {
                    if !self.enqueue_root(reduced[0], !symmetric) {
                        return false;
                    }
                }
                _ => {
                    self.stats.symmetric_images += u64::from(symmetric);
                    let lbd = reduced.len() as u32;
                    self.attach_clause(reduced, true, symmetric, lbd);
                }
            }
        }
        true
    }

    /// Drops the worst half of the learned clauses (by LBD, then length),
    /// keeping binary, low-LBD, and locked clauses. Runs at level 0 with
    /// a propagation fixpoint, so watch rebuilding is straightforward.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert_eq!(self.qhead, self.trail.len());
        let mut candidates: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&cref| {
                let c = &self.clauses[cref as usize];
                c.learned && !c.deleted && c.lits.len() > 2 && c.lbd > 3 && !self.is_locked(cref)
            })
            .collect();
        candidates.sort_by_key(|&cref| {
            let c = &self.clauses[cref as usize];
            std::cmp::Reverse((c.lbd, c.lits.len() as u32))
        });
        for &cref in candidates.iter().take(candidates.len() / 2) {
            self.clauses[cref as usize].deleted = true;
            self.learned_live -= 1;
            self.stats.deleted += 1;
        }
        // Rebuild all watches; deleted clauses drop out. For each
        // survivor move two non-false (or one true) literal(s) up front —
        // sound at a level-0 fixpoint, where every clause is satisfied or
        // has two non-false literals.
        for w in &mut self.watches {
            w.clear();
        }
        for cref in 0..self.clauses.len() as u32 {
            if self.clauses[cref as usize].deleted {
                continue;
            }
            let mut lits = std::mem::take(&mut self.clauses[cref as usize].lits);
            let mut front = 0;
            for j in 0..lits.len() {
                if self.lit_value(lits[j]) != FALSE {
                    lits.swap(front, j);
                    front += 1;
                    if front == 2 {
                        break;
                    }
                }
            }
            debug_assert!(
                front == 2 || lits.iter().any(|&l| self.lit_value(l) == TRUE),
                "level-0 fixpoint leaves clauses satisfied or 2-watchable"
            );
            self.watches[lits[0].code()].push(cref);
            self.watches[lits[1].code()].push(cref);
            self.clauses[cref as usize].lits = lits;
        }
        self.learned_limit = self.learned_limit + self.learned_limit / 5;
    }

    fn is_locked(&self, cref: u32) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.lit_value(first) == TRUE && self.reason[first.var() as usize] == Reason::Clause(cref)
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        self.stats.decisions += 1;
        // Companions queued by the last class decision come first: the
        // orbit of a (class, value) pick is assigned in one burst of
        // consecutive decisions (each still its own level, so 1-UIP
        // analysis and backjumping are untouched). Stale entries —
        // assigned meanwhile by propagation or undone by a backjump —
        // are skipped.
        while let Some(var) = self.orbit_queue.pop_front() {
            if self.value[var as usize] == UNDEF {
                self.stats.orbit_decisions += 1;
                return Some(Lit::new(var, true));
            }
        }
        if self.cfg.random_decision_pct > 0
            && (self.rng.next() % 100) < u64::from(self.cfg.random_decision_pct)
            && self.nvars > 0
        {
            let start = (self.rng.next() % self.nvars as u64) as usize;
            for i in 0..self.nvars {
                let v = (start + i) % self.nvars;
                if self.value[v] == UNDEF {
                    return Some(Lit::new(v as u32, self.saved_phase[v]));
                }
            }
            return None;
        }
        loop {
            let v = self.order.pop(&self.activity)?;
            if self.value[v as usize] == UNDEF {
                if self.cfg.orbit_decisions {
                    return Some(self.class_decision(v));
                }
                return Some(Lit::new(v, self.saved_phase[v as usize]));
            }
        }
    }

    /// A class-granularity decision for the class of the popped
    /// variable: pick a *value* (the phase-saved or warm-seeded one if
    /// still free, else the popped variable's own), branch its literal
    /// positively, and queue the class's orbit companions at the same
    /// value. Deciding positively assigns the whole class at once (the
    /// at-most-one clauses propagate the other values false) instead of
    /// crawling through `m − 1` negative decisions.
    ///
    /// Only fires when the popped variable's saved phase is positive —
    /// a class has a *preferred* value from phase saving or a warm
    /// seed. Forcing positive decisions on a negatively-phased variable
    /// overrides the refutation-friendly default ordering and was
    /// measured to roughly quadruple the conflict count on the
    /// `wsb(3)` `r = 3` UNSAT certificate; with the phase gate the
    /// cold UNSAT path is identical to the baseline while SAT-leaning
    /// runs still get whole-class bursts.
    fn class_decision(&mut self, popped: u32) -> Lit {
        if !self.saved_phase[popped as usize] {
            return Lit::new(popped, false);
        }
        let m = self.inst.values;
        let c = popped as usize / m;
        let mut vi = popped as usize % m;
        for w in 0..m {
            let var = c * m + w;
            if self.value[var] == UNDEF && self.saved_phase[var] {
                vi = w;
                break;
            }
        }
        if !self.orbit_of.is_empty() {
            let orbit = self.orbit_of[c] as usize;
            let (start, end) = (
                self.orbit_offsets[orbit] as usize,
                self.orbit_offsets[orbit + 1] as usize,
            );
            for i in start..end {
                let c2 = self.orbit_data[i] as usize;
                if c2 != c {
                    self.orbit_queue.push_back((c2 * m + vi) as u32);
                }
            }
        }
        Lit::new((c * m + vi) as u32, true)
    }

    fn extract_assignment(&self) -> Vec<usize> {
        let m = self.inst.values;
        (0..self.inst.classes)
            .map(|c| {
                (0..m)
                    .find(|&vi| self.value[c * m + vi] == TRUE)
                    .map(|vi| vi + 1)
                    .expect("exactly-one domain constraints hold at SAT")
            })
            .collect()
    }

    fn solve(
        mut self,
        cancel: Option<&AtomicBool>,
        pool: Option<&SharedPool>,
        ticket: Option<&Ticket>,
    ) -> (CdclResult, SearchStats) {
        self.stats.workers = 1;
        if self.root_conflict {
            return (CdclResult::Unsat, self.stats);
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_threshold = luby(1) * self.cfg.restart_base;
        // Work already reported to the ticket; deltas are charged at the
        // strided poll sites below so the governed counters track the
        // true totals without a per-iteration atomic.
        let mut charged_conflicts = 0u64;
        let mut charged_decisions = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return (CdclResult::Unsat, self.stats);
                }
                let (learnt, backtrack, lbd, symmetric) = self.analyze(conflict);
                self.cancel_until(backtrack);
                self.record(learnt, lbd, symmetric, pool);
                self.var_inc /= 0.95;
                if self.stats.conflicts.is_multiple_of(1024) {
                    // ticket.check poll site (conflict stride)
                    if let Some(flag) = cancel {
                        if flag.load(Ordering::Relaxed) {
                            return (CdclResult::Interrupted, self.stats);
                        }
                    }
                    if let Some(t) = ticket {
                        let delta = self.stats.conflicts - charged_conflicts;
                        charged_conflicts = self.stats.conflicts;
                        if t.charge_conflicts(delta).is_err() {
                            return (CdclResult::Interrupted, self.stats);
                        }
                    }
                }
            } else if conflicts_since_restart >= restart_threshold {
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                restart_threshold = luby(self.stats.restarts + 1) * self.cfg.restart_base;
                self.cancel_until(0);
                if self.propagate().is_some() || !self.absorb_pending(pool) {
                    return (CdclResult::Unsat, self.stats);
                }
                if self.learned_live > self.learned_limit {
                    if self.propagate().is_some() {
                        return (CdclResult::Unsat, self.stats);
                    }
                    self.reduce_db();
                }
            } else {
                // Poll cancellation here too: a losing portfolio member
                // deep in a low-conflict SAT dive would otherwise only
                // notice the winner at its next conflict burst.
                if self.stats.decisions.is_multiple_of(2048) {
                    // ticket.check poll site (decision stride)
                    if let Some(flag) = cancel {
                        if flag.load(Ordering::Relaxed) {
                            return (CdclResult::Interrupted, self.stats);
                        }
                    }
                    if let Some(t) = ticket {
                        let delta = self.stats.decisions - charged_decisions;
                        charged_decisions = self.stats.decisions;
                        if t.charge_decisions(delta).is_err() {
                            return (CdclResult::Interrupted, self.stats);
                        }
                    }
                }
                match self.pick_branch() {
                    None => {
                        let assignment = self.extract_assignment();
                        return (CdclResult::Sat(assignment), self.stats);
                    }
                    Some(lit) => self.assume(lit),
                }
            }
        }
    }
}

/// Partition the classes into orbits under the verified class
/// permutations (closure of the group generated by `perms`). Returns
/// CSR `(offsets, data)` over orbits plus `orbit_of[class]`; all empty
/// when there are no permutations, so callers can cheaply skip the
/// machinery on asymmetric instances.
fn build_class_orbits(classes: usize, perms: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    if perms.is_empty() || classes == 0 {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    // Union-find over classes; each verified permutation merges every
    // class with its image, which closes the generated group's orbits.
    let mut parent: Vec<u32> = (0..classes as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for perm in perms {
        debug_assert_eq!(perm.len(), classes);
        for (c, &img) in perm.iter().enumerate() {
            let a = find(&mut parent, c as u32);
            let b = find(&mut parent, img);
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    let mut orbit_of = vec![u32::MAX; classes];
    let mut orbit_count = 0u32;
    for c in 0..classes {
        let root = find(&mut parent, c as u32) as usize;
        if orbit_of[root] == u32::MAX {
            orbit_of[root] = orbit_count;
            orbit_count += 1;
        }
        orbit_of[c] = orbit_of[root];
    }
    let mut offsets = vec![0u32; orbit_count as usize + 1];
    for &o in &orbit_of {
        offsets[o as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor = offsets.clone();
    let mut data = vec![0u32; classes];
    for (c, &o) in orbit_of.iter().enumerate() {
        data[cursor[o as usize] as usize] = c as u32;
        cursor[o as usize] += 1;
    }
    (offsets, data, orbit_of)
}

/// Variable permutations of the symmetry group elements: verified class
/// permutations, adjacent value transpositions (symmetric specs), and
/// their products — identity excluded.
fn build_var_maps(inst: &Instance, m: usize) -> Vec<Vec<u32>> {
    let identity_class: Vec<u32> = (0..inst.classes as u32).collect();
    let mut class_choices: Vec<&[u32]> = vec![&identity_class];
    for perm in &inst.class_perms {
        class_choices.push(perm);
    }
    let mut value_choices: Vec<Vec<usize>> = vec![(0..m).collect()];
    if inst.value_symmetric {
        for vi in 0..m.saturating_sub(1) {
            let mut swap: Vec<usize> = (0..m).collect();
            swap.swap(vi, vi + 1);
            value_choices.push(swap);
        }
    }
    let mut maps = Vec::new();
    for (ci, classes) in class_choices.iter().enumerate() {
        for (vj, values) in value_choices.iter().enumerate() {
            if ci == 0 && vj == 0 {
                continue; // identity
            }
            let map: Vec<u32> = (0..inst.classes * m)
                .map(|var| {
                    let (c, vi) = (var / m, var % m);
                    classes[c] * m as u32 + values[vi] as u32
                })
                .collect();
            maps.push(map);
        }
    }
    maps
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, …
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing i, then recurse.
    let mut k = 1u64;
    while (1u64 << (k + 1)) - 1 <= i {
        k += 1;
    }
    while i != (1u64 << k) - 1 {
        i -= (1u64 << k) - 1;
        k = 1;
        while (1u64 << (k + 1)) - 1 <= i {
            k += 1;
        }
    }
    1u64 << (k - 1)
}

/// Upper bound on portfolio width (beyond this, diversification returns
/// diminishing variety for these instance sizes).
const MAX_PORTFOLIO: usize = 8;

/// Diversified configurations for `width` portfolio members; member 0 is
/// the base configuration, so a 1-wide portfolio is exactly the
/// deterministic single solver.
fn diversify(base: &CdclConfig, width: usize) -> Vec<CdclConfig> {
    (0..width)
        .map(|i| {
            let mut cfg = base.clone();
            if i > 0 {
                cfg.seed = base
                    .seed
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(i as u64);
                cfg.default_phase = i % 2 == 1;
                cfg.restart_base = match i % 3 {
                    0 => 64,
                    1 => 256,
                    _ => 1024,
                };
                cfg.random_decision_pct = [2, 5, 0, 10][i % 4];
                cfg.activity_jitter = true;
            }
            cfg
        })
        .collect()
}

/// Solves `inst` with a first-finisher-wins portfolio sized by
/// `rayon::current_num_threads()` (which honors `RAYON_NUM_THREADS`):
/// width 1 — the 1-core container case — runs one deterministic solver
/// inline, wider runs exchange short learned clauses through a shared
/// pool when the base configuration allows it.
pub(crate) fn solve_portfolio(inst: &Instance, base: &CdclConfig) -> (CdclResult, SearchStats) {
    solve_portfolio_governed(inst, base, None)
}

/// [`solve_portfolio`] under a governance ticket: every member polls the
/// ticket at its strided check sites, and an externally tripped ticket
/// interrupts the whole portfolio, returning `Interrupted` with the
/// partial statistics of the busiest member.
pub(crate) fn solve_portfolio_governed(
    inst: &Instance,
    base: &CdclConfig,
    ticket: Option<&Ticket>,
) -> (CdclResult, SearchStats) {
    let width = rayon::current_num_threads().clamp(1, MAX_PORTFOLIO);
    solve_portfolio_width_governed(inst, base, width, ticket)
}

/// [`solve_portfolio`] at an explicit width (tests exercise the
/// multi-worker path regardless of host core count).
#[cfg(test)]
pub(crate) fn solve_portfolio_width(
    inst: &Instance,
    base: &CdclConfig,
    width: usize,
) -> (CdclResult, SearchStats) {
    solve_portfolio_width_governed(inst, base, width, None)
}

/// One cancellable CDCL run with an explicit configuration — the
/// completion race's CDCL lane. The cancel flag lets the race stop the
/// loser as soon as either engine finishes.
pub(crate) fn solve_single_cancellable(
    inst: &Instance,
    cfg: CdclConfig,
    cancel: &AtomicBool,
    ticket: Option<&Ticket>,
) -> (CdclResult, SearchStats) {
    Solver::new(inst, cfg).solve(Some(cancel), None, ticket)
}

/// [`solve_portfolio_width`] under a governance ticket.
pub(crate) fn solve_portfolio_width_governed(
    inst: &Instance,
    base: &CdclConfig,
    width: usize,
    ticket: Option<&Ticket>,
) -> (CdclResult, SearchStats) {
    let configs = diversify(base, width.max(1));
    if configs.len() == 1 {
        let cfg = configs.into_iter().next().expect("width 1");
        return Solver::new(inst, cfg).solve(None, None, ticket);
    }
    let workers = configs.len();
    let pool = SharedPool::default();
    let pool = base.share_learned.then_some(&pool);
    let done = AtomicBool::new(false);
    let winner: Mutex<Option<(CdclResult, SearchStats)>> = Mutex::new(None);
    // When the ticket trips, *every* member comes back Interrupted and
    // there is no winner; keep the busiest interrupted member's stats so
    // partial progress is still reported.
    let interrupted: Mutex<Option<SearchStats>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for cfg in configs {
            let (done, winner, interrupted, pool) = (&done, &winner, &interrupted, pool);
            scope.spawn(move || {
                let (result, stats) = Solver::new(inst, cfg).solve(Some(done), pool, ticket);
                if matches!(result, CdclResult::Interrupted) {
                    let mut slot = interrupted.lock().unwrap_or_else(|p| p.into_inner());
                    let busier = slot.is_none_or(|s| {
                        stats.conflicts + stats.decisions > s.conflicts + s.decisions
                    });
                    if busier {
                        *slot = Some(stats);
                    }
                } else {
                    let mut slot = winner.lock().unwrap_or_else(|p| p.into_inner());
                    if slot.is_none() {
                        *slot = Some((result, stats));
                        done.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let (result, mut stats) = winner
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .unwrap_or_else(|| {
            let partial = interrupted
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_default();
            (CdclResult::Interrupted, partial)
        });
    stats.workers = workers;
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    fn nae_triangle() -> Instance {
        // Three classes, two values, every pair must not be constant:
        // the 3-cycle NAE instance — satisfiable (2-colorable cycle is
        // not, but pairs only need a non-constant pair... this one is
        // UNSAT for odd cycles with "both values present" per edge).
        Instance {
            classes: 3,
            values: 2,
            lower: vec![1, 1],
            upper: vec![1, 1],
            facets: vec![
                vec![(0, 1), (1, 1)],
                vec![(1, 1), (2, 1)],
                vec![(0, 1), (2, 1)],
            ],
            class_weight: vec![2, 2, 2],
            value_symmetric: true,
            precedence_order: vec![0, 1, 2],
            class_perms: vec![],
        }
    }

    #[test]
    fn odd_nae_cycle_is_unsat() {
        // Each edge needs one 1 and one 2: a proper 2-coloring of an odd
        // cycle, which does not exist.
        let inst = nae_triangle();
        let (result, stats) = solve_portfolio(&inst, &CdclConfig::default());
        assert_eq!(result, CdclResult::Unsat);
        assert!(stats.conflicts >= 1);
    }

    #[test]
    fn even_nae_path_is_sat() {
        let inst = Instance {
            classes: 2,
            values: 2,
            lower: vec![1, 1],
            upper: vec![1, 1],
            facets: vec![vec![(0, 1), (1, 1)]],
            class_weight: vec![1, 1],
            value_symmetric: true,
            precedence_order: vec![0, 1],
            class_perms: vec![],
        };
        let (result, _) = solve_portfolio(&inst, &CdclConfig::default());
        match result {
            CdclResult::Sat(assignment) => {
                assert_eq!(assignment.len(), 2);
                assert_ne!(assignment[0], assignment[1]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn multiplicity_windows_respected() {
        // One facet [c, c, c] with window exactly-3 of one value: the
        // single class must take a value with u ≥ 3 — here only value 1.
        let inst = Instance {
            classes: 1,
            values: 2,
            lower: vec![0, 0],
            upper: vec![3, 2],
            facets: vec![vec![(0, 3)]],
            class_weight: vec![1],
            value_symmetric: false,
            precedence_order: vec![0],
            class_perms: vec![],
        };
        let (result, _) = solve_portfolio(&inst, &CdclConfig::default());
        assert_eq!(result, CdclResult::Sat(vec![1]));
    }

    #[test]
    fn symmetric_images_stay_sound_on_unsat_instances() {
        // The triangle with its rotation as a class symmetry: orbit
        // learning must not change the verdict.
        let mut inst = nae_triangle();
        inst.class_perms = vec![vec![1, 2, 0], vec![2, 0, 1]];
        let (result, _) = solve_portfolio(&inst, &CdclConfig::default());
        assert_eq!(result, CdclResult::Unsat);
    }

    #[test]
    fn precedence_taint_does_not_poison_symmetric_images() {
        // A SAT even NAE cycle with genuine class symmetries and
        // interchangeable values: value precedence plants tainted root
        // facts, and any orbit image of a clause that silently resolved
        // against them would wrongly exclude the remaining solutions.
        // Aggressive restarts force image absorption early.
        let inst = Instance {
            classes: 4,
            values: 2,
            lower: vec![1, 1],
            upper: vec![1, 1],
            facets: vec![
                vec![(0, 1), (1, 1)],
                vec![(1, 1), (2, 1)],
                vec![(2, 1), (3, 1)],
                vec![(0, 1), (3, 1)],
            ],
            class_weight: vec![2, 2, 2, 2],
            value_symmetric: true,
            precedence_order: vec![0, 1, 2, 3],
            class_perms: vec![vec![2, 3, 0, 1], vec![1, 0, 3, 2]],
        };
        for restart_base in [1, 64] {
            let config = CdclConfig {
                restart_base,
                ..CdclConfig::default()
            };
            let (result, _) = solve_portfolio(&inst, &config);
            match result {
                CdclResult::Sat(assignment) => {
                    for pair in [(0, 1), (1, 2), (2, 3), (0, 3)] {
                        assert_ne!(assignment[pair.0], assignment[pair.1]);
                    }
                }
                other => panic!("expected SAT, got {other:?}"),
            }
        }
    }

    #[test]
    fn portfolio_width_three_agrees_on_both_verdicts() {
        // Exercise the scoped-thread path (first-finisher-wins, shared
        // pool, cancellation) even on a 1-core host.
        let unsat = nae_triangle();
        let (result, stats) = solve_portfolio_width(&unsat, &CdclConfig::default(), 3);
        assert_eq!(result, CdclResult::Unsat);
        assert_eq!(stats.workers, 3);
        let sat = Instance {
            classes: 2,
            values: 2,
            lower: vec![1, 1],
            upper: vec![1, 1],
            facets: vec![vec![(0, 1), (1, 1)]],
            class_weight: vec![1, 1],
            value_symmetric: true,
            precedence_order: vec![0, 1],
            class_perms: vec![],
        };
        let (result, _) = solve_portfolio_width(&sat, &CdclConfig::default(), 3);
        assert!(matches!(result, CdclResult::Sat(_)));
    }

    #[test]
    fn diversify_keeps_member_zero_deterministic() {
        let base = CdclConfig::default();
        let configs = diversify(&base, 4);
        assert_eq!(configs[0].seed, base.seed);
        assert_eq!(configs[0].default_phase, base.default_phase);
        assert!(configs.iter().skip(1).any(|c| c.seed != base.seed));
    }
}
