//! Error types for the `gsb-topology` crate.
//!
//! Introduced with the engine/evidence redesign: witness replay
//! ([`DecisionMap::check`](crate::solvability::DecisionMap::check)) and
//! certificate checking report structured failures instead of panicking,
//! so the unified `gsb_universe::Error` can carry them across crate
//! boundaries.

use std::fmt;

use crate::theorem11::CertificateFailure;

/// A specialized [`Result`](std::result::Result) type for `gsb-topology`
/// operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by fallible `gsb-topology` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A Theorem 11 structural certificate did not go through.
    Certificate(CertificateFailure),
    /// A decision map was replayed against a complex whose symmetry
    /// quotient has a different class count — the witness does not
    /// describe this `(n, rounds)` subdivision.
    ClassCountMismatch {
        /// Classes recorded in the witness.
        witness: usize,
        /// Classes of the freshly built quotient.
        complex: usize,
    },
    /// The freshly built quotient contains a view-signature class the
    /// witness does not cover (same count, different classes) — the
    /// witness describes some other complex.
    UnknownClassSignature {
        /// Index of the uncovered class in the fresh quotient.
        class: usize,
    },
    /// A decision map assigned a value outside `[1..m]`.
    ValueOutOfRange {
        /// The class whose assignment is out of range.
        class: usize,
        /// The offending value.
        value: usize,
        /// The number of output values `m`.
        values: usize,
    },
    /// Facet-by-facet replay found a facet whose decision vector violates
    /// the task's counting bounds — the witness is not a decision map for
    /// this specification.
    IllegalFacet {
        /// Index of the violating facet (in the complex's facet order).
        facet: usize,
        /// Value decided `counts[v−1]` times across the facet's vertices.
        counts: Vec<usize>,
    },
    /// The specification's process count does not match the complex.
    ProcessCountMismatch {
        /// Processes in the specification.
        spec: usize,
        /// Colors of the complex the witness was built over.
        complex: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Certificate(failure) => write!(f, "certificate failed: {failure}"),
            Error::ClassCountMismatch { witness, complex } => write!(
                f,
                "decision map covers {witness} symmetry classes but the complex has {complex}"
            ),
            Error::UnknownClassSignature { class } => write!(
                f,
                "complex class {class} has a view signature the decision map does not cover"
            ),
            Error::ValueOutOfRange {
                class,
                value,
                values,
            } => write!(
                f,
                "class {class} decides {value}, outside the value space [1..{values}]"
            ),
            Error::IllegalFacet { facet, counts } => write!(
                f,
                "facet {facet} replays to counts {counts:?}, violating the task bounds"
            ),
            Error::ProcessCountMismatch { spec, complex } => write!(
                f,
                "specification has {spec} processes but the complex has {complex} colors"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<CertificateFailure> for Error {
    fn from(failure: CertificateFailure) -> Self {
        Error::Certificate(failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = Error::IllegalFacet {
            facet: 7,
            counts: vec![3, 0],
        };
        assert!(err.to_string().contains("facet 7"));
        let err: Error = CertificateFailure::NotPseudomanifold.into();
        assert!(err.to_string().contains("pseudomanifold"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
