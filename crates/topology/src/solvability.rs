//! Exhaustive decision-map search: comparison-based solvability of GSB
//! tasks over iterated immediate snapshot, for small `n`.
//!
//! **What is decided.** A one-shot task is solvable by an `r`-round
//! comparison-based full-information IIS protocol iff there is a
//! *symmetric* decision map `δ` on the vertices of `χ^r(Δ^{n−1})` —
//! constant on order-isomorphism classes of views
//! ([`View::signature`](crate::views::View::signature)) — such that every
//! facet's decision vector is a legal output. The symmetry requirement is
//! exactly the paper's comparison-based restriction (Section 2.2): a
//! comparison-based process behaves identically on order-isomorphic
//! views, and conversely any symmetric map is realizable by such a
//! protocol. This is the finite certificate used in the renaming
//! literature (the paper's \[10\], \[16\], \[17\]).
//!
//! **Engines.** [`SymmetricSearch::solve`] runs the conflict-driven
//! solver of [`cdcl`](crate::cdcl) — clause learning, orbit pruning,
//! and (on multi-core hosts) a first-finisher-wins portfolio — which
//! certifies instances the seed's plain backtracking could not reach in
//! reasonable time, such as the WSB `n = 3, r = 2` index-lemma UNSAT.
//! The seed engine is retained verbatim as
//! [`SymmetricSearch::solve_reference`], the oracle the CDCL engine is
//! property-tested against (same pattern as the enumeration crate's
//! `enumerate_schedules_reference`).
//!
//! **Scope of conclusions.** `Unsolvable` here means "by protocols of at
//! most the checked round count"; the classical model-equivalence results
//! (IIS ≡ wait-free read/write, e.g. Borowsky–Gafni) lift bounded-round
//! statements to the models the paper discusses, and for the tasks we
//! check (election, WSB at prime-power `n`, perfect renaming) the
//! unbounded impossibility is known from the paper's Theorems 10–11 — the
//! checker *reproduces* those facts at small `n` rather than re-proving
//! them in full generality.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

use gsb_core::govern::{Stopped, Ticket};
use gsb_core::GsbSpec;
use rayon::prelude::*;

use crate::cdcl::{self, CdclConfig, CdclResult, SearchStats};
use crate::complex::{ChromaticComplex, SignatureQuotient};
use crate::error::Error;
use crate::local;
use crate::protocol::{
    multiset_bits, pack_multiset, protocol_complex, shared_protocol_complex, unpack_multiset,
    OrbitBuildStats, OrbitFrontier,
};
use crate::views::{View, ViewArena, ViewKey};

/// The result of a decision-map search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A symmetric decision map exists; `assignment[c]` is the value
    /// decided by symmetry class `c` (classes listed in
    /// [`SymmetricSearch::classes`]).
    Solvable {
        /// Value per symmetry class.
        assignment: Vec<usize>,
    },
    /// No symmetric decision map exists at the checked round count.
    Unsolvable,
}

impl SearchResult {
    /// Whether a map was found.
    #[must_use]
    pub fn is_solvable(&self) -> bool {
        matches!(self, SearchResult::Solvable { .. })
    }

    /// The per-class assignment of a SAT result, if any.
    #[must_use]
    pub fn assignment(&self) -> Option<&[usize]> {
        match self {
            SearchResult::Solvable { assignment } => Some(assignment),
            SearchResult::Unsolvable => None,
        }
    }
}

impl std::fmt::Display for SearchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchResult::Solvable { assignment } => {
                write!(
                    f,
                    "solvable: symmetric decision map over {} classes",
                    assignment.len()
                )
            }
            SearchResult::Unsolvable => f.write_str("unsolvable at the checked round count"),
        }
    }
}

/// Which engine family answers a solvability search.
///
/// A performance knob, never a semantics knob: any verdict returned
/// under any mode is correct and carries the same replayable evidence.
/// [`SearchMode::Local`] is *incomplete* — it can complete witnesses
/// but never refute, so "no verdict" is a possible outcome even without
/// a governance ticket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SearchMode {
    /// The complete conflict-driven engine (SAT and UNSAT verdicts).
    #[default]
    Cdcl,
    /// CDCL raced against the min-conflicts completion engine with
    /// first-finisher-wins cancellation; an UNSAT verdict can only come
    /// from the CDCL lane.
    Race,
    /// The min-conflicts completion engine alone: a witness or no
    /// answer.
    Local,
}

impl SearchMode {
    /// Stable wire label (`--search-mode` values, JSON round-trip).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SearchMode::Cdcl => "cdcl",
            SearchMode::Race => "race",
            SearchMode::Local => "local",
        }
    }

    /// Parses a [`SearchMode::label`] back; `None` on unknown labels.
    #[must_use]
    pub fn from_label(label: &str) -> Option<SearchMode> {
        match label {
            "cdcl" => Some(SearchMode::Cdcl),
            "race" => Some(SearchMode::Race),
            "local" => Some(SearchMode::Local),
            _ => None,
        }
    }
}

/// A **replayable symmetric decision map**: the SAT witness of a
/// round-bounded solvability search, packaged so that anyone — not just
/// the engine that found it — can re-verify it facet by facet.
///
/// The map assigns one value to every order-isomorphism class of views of
/// `χ^rounds(Δ^{n−1})`. [`DecisionMap::check`] rebuilds that protocol
/// complex from scratch (bypassing the process-wide memo) and replays the
/// assignment over **every raw facet** — not the deduplicated constraint
/// system the solvers work on — so a bug in the search's quotienting or
/// clause encoding cannot also hide in the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionMap {
    n: usize,
    rounds: usize,
    /// Canonical signature of each symmetry class, in canonical
    /// (ascending-view) order — the order every search prep and
    /// [`DecisionMap::rebuild`] use, *not* the raw
    /// [`SignatureQuotient`](crate::SignatureQuotient) order.
    classes: Vec<View>,
    /// Value decided by each class.
    assignment: Vec<usize>,
}

impl DecisionMap {
    /// Reconstructs a decision map from `(n, rounds, assignment)` alone —
    /// the serialized form — by rebuilding the signature quotient of
    /// `χ^rounds(Δ^{n−1})`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ClassCountMismatch`] if `assignment` does not
    /// have one value per symmetry class of that complex.
    pub fn rebuild(n: usize, rounds: usize, assignment: Vec<usize>) -> Result<Self, Error> {
        let complex = shared_protocol_complex(n, rounds);
        let quotient = complex.signature_quotient();
        if quotient.classes.len() != assignment.len() {
            return Err(Error::ClassCountMismatch {
                witness: assignment.len(),
                complex: quotient.classes.len(),
            });
        }
        // Canonical (ascending-view) class order — the order every
        // search prep uses, whichever pipeline built it — so a
        // serialized `(n, rounds, assignment)` triple deserializes to
        // the map the search produced.
        let mut classes = quotient.classes.clone();
        classes.sort_unstable();
        Ok(DecisionMap {
            n,
            rounds,
            classes,
            assignment,
        })
    }

    /// Number of processes (colors of the underlying complex).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Protocol rounds of the underlying subdivision.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The symmetry classes (canonical view signatures), in canonical
    /// ascending-view order, aligned with [`DecisionMap::assignment`].
    #[must_use]
    pub fn classes(&self) -> &[View] {
        &self.classes
    }

    /// Value decided by each class, aligned with [`DecisionMap::classes`].
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The value this map decides for `view` (any view of the complex —
    /// looked up through its canonical signature), or `None` if the view
    /// belongs to no recorded class.
    #[must_use]
    pub fn value_of(&self, view: &View) -> Option<usize> {
        let signature = view.signature();
        self.classes
            .iter()
            .position(|c| *c == signature)
            .map(|i| self.assignment[i])
    }

    /// Independently re-verifies the witness against `spec`, **facet by
    /// facet**: rebuilds `χ^rounds(Δ^{n−1})` from scratch, maps every
    /// vertex through its signature class, and checks the decision vector
    /// of every raw facet against the task's counting bounds.
    ///
    /// # Errors
    ///
    /// Returns the structured [`Error`] describing the first replay
    /// failure (process-count, class-coverage, value-range, or a facet
    /// whose counts violate the bounds).
    pub fn check(&self, spec: &GsbSpec) -> Result<(), Error> {
        if spec.n() != self.n {
            return Err(Error::ProcessCountMismatch {
                spec: spec.n(),
                complex: self.n,
            });
        }
        let m = spec.m();
        for (class, &value) in self.assignment.iter().enumerate() {
            if value == 0 || value > m {
                return Err(Error::ValueOutOfRange {
                    class,
                    value,
                    values: m,
                });
            }
        }
        // A fresh build — deliberately not the shared memo — so the replay
        // does not trust any state the search populated.
        let complex = protocol_complex(self.n, self.rounds);
        let quotient = complex.signature_quotient();
        if quotient.classes.len() != self.classes.len() {
            return Err(Error::ClassCountMismatch {
                witness: self.classes.len(),
                complex: quotient.classes.len(),
            });
        }
        // Map the fresh quotient's classes onto the witness's class order
        // by signature (robust to any future reordering of the quotient).
        let index: HashMap<&View, usize> = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, sig)| (sig, i))
            .collect();
        let mut fresh_to_witness = Vec::with_capacity(quotient.classes.len());
        for (class, sig) in quotient.classes.iter().enumerate() {
            match index.get(sig) {
                Some(&i) => fresh_to_witness.push(i),
                None => return Err(Error::UnknownClassSignature { class }),
            }
        }
        let mut counts = vec![0usize; m];
        for (f, facet) in complex.facets().enumerate() {
            counts.iter_mut().for_each(|c| *c = 0);
            for &v in facet.iter() {
                let fresh_class = quotient.vertex_class[v as usize] as usize;
                let value = self.assignment[fresh_to_witness[fresh_class]];
                counts[value - 1] += 1;
            }
            for v in 1..=m {
                if counts[v - 1] < spec.lower(v) || counts[v - 1] > spec.upper(v) {
                    return Err(Error::IllegalFacet {
                        facet: f,
                        counts: counts.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for DecisionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decision map on χ^{}(Δ^{}) over {} classes",
            self.rounds,
            self.n.saturating_sub(1),
            self.classes.len()
        )
    }
}

/// The **spec-independent half of a prepared search**: the protocol
/// complex's signature classes in canonical (ascending-view) order and
/// the distinct facet constraints over them, plus the derived indexes
/// the engines branch on.
///
/// Two pipelines produce it, and they are equivalence-tested to the
/// byte (`tests/orbit_equivalence.rs` and the in-crate instance test):
///
/// * [`ConstraintSystem::from_complex`] — the reference path: quotient
///   a materialized [`ChromaticComplex`] and stream its facet windows
///   into deduplicated class multisets.
/// * [`ConstraintSystem::from_orbit_frontier`] /
///   [`ConstraintSystem::streamed`] — the **fused orbit path**: stamp
///   one lex-leader representative per `S_n`-orbit of facets
///   ([`OrbitFrontier`]) and expand constraints at the class level,
///   never materializing a complex. Classes are kept as arena keys and
///   materialized to [`View`]s only on demand.
///
/// Because the system depends only on `(n, rounds)` — never on the
/// task — the engine cache shares one `Arc<ConstraintSystem>` across
/// every spec searched at the same parameters.
#[derive(Debug)]
pub struct ConstraintSystem {
    /// Materialized quotient, classes canonically ordered. Set eagerly
    /// by the complex path; the orbit path fills it lazily from `lazy`.
    quotient: OnceLock<Arc<SignatureQuotient>>,
    /// Orbit-path source: the frontier's arena, the canonical class
    /// keys, and the first free permutation-memo id (the group ids
    /// `0..base` are taken by the `S_n` enumeration).
    lazy: Option<Mutex<(ViewArena, Vec<ViewKey>, u32)>>,
    class_count: usize,
    /// Constraint width: one class id per process (`n`).
    width: usize,
    /// Facet constraints as sorted class multisets, deduplicated,
    /// family-sorted, and stored flat (`width` ids per constraint) —
    /// 421,875 `χ³(Δ³)` constraints are one allocation.
    facet_classes: Vec<u32>,
    /// Class occurrence counts over the distinct constraints (search
    /// ordering).
    class_weight: Vec<usize>,
    /// For each class, the distinct constraints mentioning it —
    /// CSR-packed (`class_facets_data[offsets[c]..offsets[c + 1]]`).
    class_facets_offsets: Vec<u32>,
    class_facets_data: Vec<u32>,
    /// Candidate class permutations mined by the orbit pipeline from
    /// its group image table (empty on the complex path). Unverified —
    /// `class_perms` re-checks each before use.
    mined_perm_candidates: Vec<Vec<u32>>,
    /// Verified class permutations (orbit learning), computed on first
    /// demand — spec-independent, like everything else here.
    class_perms: OnceLock<Vec<Vec<u32>>>,
}

impl ConstraintSystem {
    /// Builds the system from a materialized complex (the reference
    /// path).
    ///
    /// Signatures are interned once per class through the complex's
    /// [`signature_quotient`](ChromaticComplex::signature_quotient) —
    /// no per-vertex signature clones. Facet constraints stream through
    /// per-chunk windows: each window maps its facets to sorted class
    /// multisets and deduplicates hash-based, so the raw facet list
    /// (421,875 rows for `χ³(Δ³)`) is never rebuilt as an intermediate
    /// `Vec<Vec<usize>>` — only the far smaller distinct-constraint set
    /// is ever materialized.
    #[must_use]
    pub fn from_complex(complex: &ChromaticComplex) -> Self {
        let raw = complex.signature_quotient();
        let class_count = raw.classes.len();
        // Canonical class order: ascending view order — identical to
        // the orbit pipeline's key-level sort, so the two paths hand
        // the solver byte-identical instances.
        let mut order: Vec<u32> =
            (0..u32::try_from(class_count).expect("classes fit in u32")).collect();
        order.sort_unstable_by(|&a, &b| raw.classes[a as usize].cmp(&raw.classes[b as usize]));
        let mut new_of_old = vec![0u32; class_count];
        for (new, &old) in order.iter().enumerate() {
            new_of_old[old as usize] = u32::try_from(new).expect("classes fit in u32");
        }
        let classes: Vec<View> = order
            .iter()
            .map(|&old| raw.classes[old as usize].clone())
            .collect();
        let vertex_class: Vec<u32> = raw
            .vertex_class
            .iter()
            .map(|&c| new_of_old[c as usize])
            .collect();
        // Facets with the same class multiset impose the same constraint;
        // deduplicating them collapses the subdivision's symmetry and is
        // what makes r = 2 searches tractable.
        let n = complex.n().max(1);
        let bits = multiset_bits(n);
        assert!(
            (class_count as u128) <= (1u128 << bits),
            "class count exceeds the {bits}-bit constraint packing at n = {n}"
        );
        let data = complex.facet_data();
        let facet_count = complex.facet_count();
        let workers = rayon::current_num_threads().max(1);
        let mut distinct: HashSet<u128> = HashSet::new();
        if workers > 1 && facet_count >= 2 * workers {
            // Parallel windows, each deduplicating locally; the serial
            // merge then unions the (already small) distinct sets.
            let window = facet_count.div_ceil(workers) * n;
            let locals: Vec<HashSet<u128>> = data
                .chunks(window)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|window| facet_class_window(window, n, &vertex_class, bits))
                .collect();
            for local in locals {
                distinct.extend(local);
            }
        } else {
            distinct = facet_class_window(data, n, &vertex_class, bits);
        }
        // One u128 sort orders the packed family lexicographically.
        let mut packed: Vec<u128> = distinct.into_iter().collect();
        packed.sort_unstable();
        let mut facet_classes: Vec<u32> = vec![0; packed.len() * n];
        for (chunk, &word) in facet_classes.chunks_exact_mut(n).zip(&packed) {
            unpack_multiset(word, bits, chunk);
        }
        let (class_weight, class_facets_offsets, class_facets_data) =
            index_constraints(&facet_classes, n, class_count);
        ConstraintSystem {
            quotient: OnceLock::from(Arc::new(SignatureQuotient {
                classes,
                vertex_class,
            })),
            lazy: None,
            class_count,
            width: n,
            facet_classes,
            class_weight,
            class_facets_offsets,
            class_facets_data,
            mined_perm_candidates: Vec::new(),
            class_perms: OnceLock::new(),
        }
    }

    /// Builds the system through the fused orbit pipeline: stream
    /// `rounds` orbit-quotiented subdivision rounds and expand the
    /// representative frontier straight into constraints, returning the
    /// orbit counters alongside. No [`ChromaticComplex`] is ever
    /// materialized.
    ///
    /// # Panics
    ///
    /// Panics if `n = 0`.
    #[must_use]
    pub fn streamed(n: usize, rounds: usize) -> (Self, OrbitBuildStats) {
        Self::streamed_governed(n, rounds, None).expect("ungoverned streaming cannot stop")
    }

    /// [`ConstraintSystem::streamed`] under a governance ticket: every
    /// subdivision round and the final expansion poll the ticket and
    /// charge their allocations against its memory budget.
    ///
    /// # Panics
    ///
    /// Panics if `n = 0`.
    pub fn streamed_governed(
        n: usize,
        rounds: usize,
        ticket: Option<&Ticket>,
    ) -> Result<(Self, OrbitBuildStats), Stopped> {
        let mut frontier = OrbitFrontier::new(n);
        for _ in 0..rounds {
            frontier.try_advance(ticket)?;
        }
        let expansion = frontier.try_expand(ticket)?;
        let stats = frontier.stats();
        let perm_id_base = frontier.perm_id_base();
        // One-shot path: the frontier is consumed, so the arena moves.
        let arena = frontier.into_arena();
        Ok((
            Self::from_orbit_parts(n, expansion, arena, perm_id_base),
            stats,
        ))
    }

    /// Builds the system from an already-advanced [`OrbitFrontier`]
    /// (the engine cache's path: cached frontiers extend round by round
    /// during sweeps, and each round's expansion leaves the frontier
    /// valid for the next extension).
    #[must_use]
    pub fn from_orbit_frontier(frontier: &mut OrbitFrontier) -> Self {
        Self::from_orbit_frontier_governed(frontier, None)
            .expect("ungoverned expansion cannot stop")
    }

    /// [`ConstraintSystem::from_orbit_frontier`] under a governance
    /// ticket. Expansion never mutates the frontier's rows, so an `Err`
    /// return leaves the cached frontier valid for later extension.
    pub fn from_orbit_frontier_governed(
        frontier: &mut OrbitFrontier,
        ticket: Option<&Ticket>,
    ) -> Result<Self, Stopped> {
        let expansion = frontier.try_expand(ticket)?;
        // The frontier stays cached for later round extension, so the
        // arena is cloned.
        let arena = frontier.clone_arena();
        Ok(Self::from_orbit_parts(
            frontier.n(),
            expansion,
            arena,
            frontier.perm_id_base(),
        ))
    }

    fn from_orbit_parts(
        n: usize,
        expansion: crate::protocol::OrbitExpansion,
        arena: ViewArena,
        perm_id_base: u32,
    ) -> Self {
        let class_count = expansion.class_keys.len();
        let (class_weight, class_facets_offsets, class_facets_data) =
            index_constraints(&expansion.facet_classes, n, class_count);
        ConstraintSystem {
            quotient: OnceLock::new(),
            lazy: Some(Mutex::new((arena, expansion.class_keys, perm_id_base))),
            class_count,
            width: n,
            facet_classes: expansion.facet_classes,
            class_weight,
            class_facets_offsets,
            class_facets_data,
            mined_perm_candidates: expansion.class_perm_candidates,
            class_perms: OnceLock::new(),
        }
    }

    /// Number of symmetry classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of distinct facet constraints.
    #[must_use]
    pub fn facet_count(&self) -> usize {
        self.facet_classes.len() / self.width.max(1)
    }

    /// Number of *verified* class permutations available to orbit
    /// learning and orbit-guided decisions (forces verification on
    /// first call; cached afterwards).
    #[must_use]
    pub fn verified_class_perm_count(&self) -> usize {
        self.class_perms().len()
    }

    /// One distinct constraint: a sorted class multiset of `width` ids.
    fn facet(&self, f: usize) -> &[u32] {
        &self.facet_classes[f * self.width..(f + 1) * self.width]
    }

    /// The distinct constraints mentioning class `c`, ascending.
    fn class_facets(&self, c: usize) -> &[u32] {
        &self.class_facets_data
            [self.class_facets_offsets[c] as usize..self.class_facets_offsets[c + 1] as usize]
    }

    /// The classes as canonical view signatures, ascending. The orbit
    /// path materializes them from its arena on first demand (the
    /// solver itself never needs the recursive views — only witnesses
    /// and displays do).
    #[must_use]
    pub fn classes(&self) -> &[View] {
        &self.materialized().classes
    }

    fn materialized(&self) -> &Arc<SignatureQuotient> {
        self.quotient.get_or_init(|| {
            let lazy = self
                .lazy
                .as_ref()
                .expect("a system is eager or carries its orbit arena");
            let guard = lazy.lock().expect("orbit arena poisoned");
            let (arena, keys, _) = &*guard;
            let classes: Vec<View> = keys.iter().map(|&k| arena.view(k)).collect();
            Arc::new(SignatureQuotient {
                classes,
                vertex_class: Vec::new(),
            })
        })
    }

    /// Verified class permutations of the quotient: candidate maps come
    /// from order-reversal of view signatures
    /// ([`View::reversed_signature`]) and, on the orbit path, from the
    /// renamings mined out of the group image table
    /// ([`OrbitExpansion::class_perm_candidates`]); a candidate is kept
    /// only if it is a bijection on classes under which the facet
    /// multiset family is invariant, so orbit learning and
    /// orbit-guided decisions never use an unsound symmetry.
    /// Computed on first demand and cached; the orbit path derives the
    /// reversal key-level (reversal is an arbitrary-permutation relabel
    /// of the signature's `1..s` support), without materializing views.
    fn class_perms(&self) -> &[Vec<u32>] {
        self.class_perms.get_or_init(|| {
            let candidate: Option<Vec<u32>> = match &self.lazy {
                Some(lazy) => {
                    let mut guard = lazy.lock().expect("orbit arena poisoned");
                    let (arena, keys, base) = &mut *guard;
                    let index: HashMap<ViewKey, u32> = keys
                        .iter()
                        .enumerate()
                        .map(|(i, &k)| (k, u32::try_from(i).expect("classes fit in u32")))
                        .collect();
                    let keys: Vec<ViewKey> = keys.clone();
                    let base = *base;
                    keys.iter()
                        .map(|&key| {
                            let s = arena.support_len(key);
                            // A signature's support is exactly 1..=s, so
                            // reversal is the bijection i ↦ s+1−i; its
                            // image is again canonical, hence a class key.
                            let reversal: Vec<u32> = (1..=s).rev().collect();
                            let rev = arena.permute(key, &reversal, base + s);
                            index.get(&rev).copied()
                        })
                        .collect()
                }
                None => {
                    let classes = &self
                        .quotient
                        .get()
                        .expect("the complex path sets its quotient eagerly")
                        .classes;
                    let index: HashMap<&View, u32> = classes
                        .iter()
                        .enumerate()
                        .map(|(i, sig)| (sig, u32::try_from(i).expect("fits in u32")))
                        .collect();
                    classes
                        .iter()
                        .map(|sig| index.get(&sig.reversed_signature()).copied())
                        .collect()
                }
            };
            let mut verified =
                verify_class_perm(candidate, &self.facet_classes, self.width, self.class_count);
            for cand in &self.mined_perm_candidates {
                for perm in verify_class_perm(
                    Some(cand.clone()),
                    &self.facet_classes,
                    self.width,
                    self.class_count,
                ) {
                    if !verified.contains(&perm) {
                        verified.push(perm);
                    }
                }
            }
            verified
        })
    }
}

/// Occurrence weights and the CSR per-class constraint index over the
/// deduplicated flat facet family (facets are sorted multisets, so
/// within-facet duplicates are consecutive).
fn index_constraints(
    facet_classes: &[u32],
    width: usize,
    classes: usize,
) -> (Vec<usize>, Vec<u32>, Vec<u32>) {
    let width = width.max(1);
    let mut class_weight = vec![0usize; classes];
    for &c in facet_classes {
        class_weight[c as usize] += 1;
    }
    let mut counts = vec![0u32; classes];
    for facet in facet_classes.chunks_exact(width) {
        let mut prev = u32::MAX;
        for &c in facet {
            if c != prev {
                counts[c as usize] += 1;
                prev = c;
            }
        }
    }
    let mut offsets = vec![0u32; classes + 1];
    for c in 0..classes {
        offsets[c + 1] = offsets[c] + counts[c];
    }
    let mut fill: Vec<u32> = offsets[..classes].to_vec();
    let mut data = vec![0u32; offsets[classes] as usize];
    for (f, facet) in facet_classes.chunks_exact(width).enumerate() {
        let mut prev = u32::MAX;
        for &c in facet {
            if c != prev {
                data[fill[c as usize] as usize] = u32::try_from(f).expect("facets fit in u32");
                fill[c as usize] += 1;
                prev = c;
            }
        }
    }
    (class_weight, offsets, data)
}

/// Keeps a candidate class permutation only if it is a genuine
/// non-identity bijection under which the facet family is invariant.
fn verify_class_perm(
    candidate: Option<Vec<u32>>,
    facet_classes: &[u32],
    width: usize,
    classes: usize,
) -> Vec<Vec<u32>> {
    let Some(perm) = candidate else {
        return Vec::new();
    };
    // Identity or non-bijective maps are useless/unsound.
    let mut targets: Vec<u32> = perm.clone();
    targets.sort_unstable();
    targets.dedup();
    if targets.len() != classes || perm.iter().enumerate().all(|(i, &p)| p == i as u32) {
        return Vec::new();
    }
    // Facet family invariance.
    let width = width.max(1);
    let facet_set: HashSet<&[u32]> = facet_classes.chunks_exact(width).collect();
    let mut image: Vec<u32> = vec![0; width];
    for facet in facet_classes.chunks_exact(width) {
        for (slot, &c) in image.iter_mut().zip(facet) {
            *slot = perm[c as usize];
        }
        image.sort_unstable();
        if !facet_set.contains(image.as_slice()) {
            return Vec::new();
        }
    }
    vec![perm]
}

/// Distinct-constraint count at or below which
/// [`SymmetricSearch::solve_with`] runs the reference backtracker
/// instead of standing up the CDCL engine: tiny instances pay more for
/// watcher and counter-propagator setup than the whole search costs
/// (`renaming(3,6) r = 1`: 0.065 ms of solver setup against a 0.011 ms
/// backtracking verdict).
const TINY_INSTANCE_FACETS: usize = 32;

/// Node admission for the reference backtracker: a hard node budget
/// (the legacy `solve_reference_budgeted` contract) plus an optional
/// governance ticket charged at a 64-node stride.
struct NodeGate<'a> {
    remaining: u64,
    visited: u64,
    ticket: Option<&'a Ticket>,
}

impl NodeGate<'_> {
    /// Admit one node; `false` means the search must stop. Each node
    /// charges the ticket exactly once, so a node budget of `k` admits
    /// exactly `k` nodes — the same contract as the legacy `max_nodes`
    /// argument (important: governed tiny searches finish in a handful
    /// of nodes, far below any stride).
    fn visit(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.visited += 1;
        match self.ticket {
            // ticket.check poll site (per-node)
            Some(t) => t.charge_nodes(1).is_ok(),
            None => true,
        }
    }
}

/// A prepared search instance: a task specification over the
/// spec-independent [`ConstraintSystem`] of its protocol complex.
#[derive(Debug, Clone)]
pub struct SymmetricSearch {
    spec: GsbSpec,
    /// Round count of the underlying subdivision (`None` when the search
    /// was prepared over an explicit complex of unknown provenance).
    rounds: Option<usize>,
    /// The shared constraint system (classes + deduplicated facet
    /// constraints), reusable across specs at the same `(n, rounds)`.
    system: Arc<ConstraintSystem>,
}

impl SymmetricSearch {
    /// Prepares the search for `spec` over the `rounds`-round protocol
    /// complex (`spec.n()` processes), served from the process-wide
    /// memoized subdivision table — the **reference path** the fused
    /// pipeline is equivalence-tested against.
    ///
    /// # Panics
    ///
    /// Panics if `spec.n() = 0`.
    #[must_use]
    pub fn new(spec: GsbSpec, rounds: usize) -> Self {
        let complex = shared_protocol_complex(spec.n(), rounds);
        let system = Arc::new(ConstraintSystem::from_complex(&complex));
        SymmetricSearch {
            spec,
            rounds: Some(rounds),
            system,
        }
    }

    /// Prepares the search through the **fused orbit-quotient path**:
    /// orbit representatives stream straight into the constraint
    /// system, never materializing a [`ChromaticComplex`] — for
    /// `χ³(Δ³)` that is ~19k stamped representative rows instead of
    /// 421,875 facets. Byte-identical to [`SymmetricSearch::new`] by
    /// construction (and by test).
    ///
    /// # Panics
    ///
    /// Panics if `spec.n() = 0`.
    #[must_use]
    pub fn from_spec_streaming(spec: GsbSpec, rounds: usize) -> Self {
        let (system, _) = ConstraintSystem::streamed(spec.n(), rounds);
        SymmetricSearch {
            spec,
            rounds: Some(rounds),
            system: Arc::new(system),
        }
    }

    /// [`SymmetricSearch::from_spec_streaming`] under a governance
    /// ticket: construction polls the ticket and charges its memory
    /// budget, so even the build phase of a query is interruptible.
    ///
    /// # Panics
    ///
    /// Panics if `spec.n() = 0`.
    pub fn from_spec_streaming_governed(
        spec: GsbSpec,
        rounds: usize,
        ticket: Option<&Ticket>,
    ) -> Result<Self, Stopped> {
        let (system, _) = ConstraintSystem::streamed_governed(spec.n(), rounds, ticket)?;
        Ok(SymmetricSearch {
            spec,
            rounds: Some(rounds),
            system: Arc::new(system),
        })
    }

    /// Prepares the search for `spec` over an explicit complex.
    #[must_use]
    pub fn over_complex(spec: GsbSpec, complex: &ChromaticComplex) -> Self {
        SymmetricSearch {
            spec,
            rounds: None,
            system: Arc::new(ConstraintSystem::from_complex(complex)),
        }
    }

    /// Prepares the search for `spec` over an already-built (usually
    /// cache-shared) constraint system. `rounds` records the
    /// subdivision depth when known, enabling replayable witnesses.
    ///
    /// # Panics
    ///
    /// Panics in later checks if `system` was not built for
    /// `spec.n()` processes (facet multisets would have the wrong
    /// arity).
    #[must_use]
    pub fn with_system(
        spec: GsbSpec,
        rounds: Option<usize>,
        system: Arc<ConstraintSystem>,
    ) -> Self {
        SymmetricSearch {
            spec,
            rounds,
            system,
        }
    }

    /// The shared constraint system this search runs on.
    #[must_use]
    pub fn system(&self) -> &Arc<ConstraintSystem> {
        &self.system
    }

    /// The symmetry classes (canonical view signatures).
    #[must_use]
    pub fn classes(&self) -> &[View] {
        self.system.classes()
    }

    /// The task specification this search decides.
    #[must_use]
    pub fn spec(&self) -> &GsbSpec {
        &self.spec
    }

    /// Round count of the subdivision, when known (searches prepared via
    /// [`SymmetricSearch::new`]; `None` after
    /// [`SymmetricSearch::over_complex`]).
    #[must_use]
    pub fn rounds(&self) -> Option<usize> {
        self.rounds
    }

    /// Packages a SAT result as a public, replayable [`DecisionMap`].
    ///
    /// Returns `None` for UNSAT results and for searches prepared over an
    /// explicit complex (whose round count is unknown, so the witness
    /// could not be replayed).
    #[must_use]
    pub fn decision_map(&self, result: &SearchResult) -> Option<DecisionMap> {
        let assignment = result.assignment()?;
        let rounds = self.rounds?;
        Some(DecisionMap {
            n: self.spec.n(),
            rounds,
            classes: self.system.classes().to_vec(),
            assignment: assignment.to_vec(),
        })
    }

    /// Number of facet constraints.
    #[must_use]
    pub fn facet_count(&self) -> usize {
        self.system.facet_count()
    }

    /// Runs the conflict-driven search (the default engine) with default
    /// configuration.
    #[must_use]
    pub fn solve(&self) -> SearchResult {
        self.solve_with(&CdclConfig::default()).0
    }

    /// Runs the conflict-driven search with an explicit configuration,
    /// returning the solver counters alongside the verdict.
    ///
    /// SAT answers are independently re-checked facet-by-facet before
    /// being returned.
    ///
    /// Instances below [`TINY_INSTANCE_FACETS`] distinct constraints
    /// skip the CDCL engine entirely and run the reference backtracker:
    /// on trivially small systems (`renaming(3,6) r = 1` is 13
    /// constraints) watcher/propagator setup costs several times the
    /// whole search, so the front door routes around it. The counters
    /// then report one worker and no conflicts/decisions.
    ///
    /// # Panics
    ///
    /// Panics if the solver produces an assignment that fails the
    /// facet-by-facet re-check (that would be a soundness bug).
    #[must_use]
    pub fn solve_with(&self, config: &CdclConfig) -> (SearchResult, SearchStats) {
        if self.facet_count() <= TINY_INSTANCE_FACETS {
            let result = self.solve_reference();
            if let SearchResult::Solvable { assignment } = &result {
                let checked: Vec<Option<usize>> = assignment.iter().map(|&v| Some(v)).collect();
                assert!(
                    self.all_facets_legal(&checked),
                    "reference assignment must satisfy every facet"
                );
            }
            let stats = SearchStats {
                workers: 1,
                ..SearchStats::default()
            };
            return (result, stats);
        }
        self.solve_cdcl_with(config)
    }

    /// The governed front door: [`SymmetricSearch::solve_with`] under a
    /// ticket. `None` means the ticket tripped before a verdict — the
    /// accompanying counters then report the partial work done (for the
    /// tiny-instance reference path, nodes visited are reported as
    /// `decisions`).
    ///
    /// # Panics
    ///
    /// As [`SymmetricSearch::solve_with`].
    #[must_use]
    pub fn solve_governed(
        &self,
        config: &CdclConfig,
        ticket: &Ticket,
    ) -> (Option<SearchResult>, SearchStats) {
        if self.facet_count() <= TINY_INSTANCE_FACETS {
            let (result, stats) = self.solve_reference_governed(ticket);
            if let Some(SearchResult::Solvable { assignment }) = &result {
                let checked: Vec<Option<usize>> = assignment.iter().map(|&v| Some(v)).collect();
                assert!(
                    self.all_facets_legal(&checked),
                    "reference assignment must satisfy every facet"
                );
            }
            return (result, stats);
        }
        self.solve_cdcl_governed(config, ticket)
    }

    /// Runs the conflict-driven engine unconditionally, bypassing the
    /// tiny-instance fast path — the hook the engine-equivalence suite
    /// compares against the backtracking oracle (through the production
    /// front door, small instances would route to the very oracle the
    /// suite diffs against, making the comparison vacuous).
    ///
    /// # Panics
    ///
    /// As [`SymmetricSearch::solve_with`].
    #[must_use]
    pub fn solve_cdcl_with(&self, config: &CdclConfig) -> (SearchResult, SearchStats) {
        let instance = self.instance();
        let (result, stats) = cdcl::solve_portfolio(&instance, config);
        match result {
            CdclResult::Sat(assignment) => {
                let checked: Vec<Option<usize>> = assignment.iter().map(|&v| Some(v)).collect();
                assert!(
                    self.all_facets_legal(&checked),
                    "CDCL assignment must satisfy every facet"
                );
                (SearchResult::Solvable { assignment }, stats)
            }
            CdclResult::Unsat => (SearchResult::Unsolvable, stats),
            CdclResult::Interrupted => unreachable!("portfolio returns a finished member"),
        }
    }

    /// The conflict-driven engine under a governance ticket: every
    /// portfolio member polls the ticket at its strided check sites.
    /// `None` means the ticket tripped; the counters then carry the
    /// busiest interrupted member's partial progress.
    ///
    /// # Panics
    ///
    /// As [`SymmetricSearch::solve_with`].
    #[must_use]
    pub fn solve_cdcl_governed(
        &self,
        config: &CdclConfig,
        ticket: &Ticket,
    ) -> (Option<SearchResult>, SearchStats) {
        let instance = self.instance();
        let (result, stats) = cdcl::solve_portfolio_governed(&instance, config, Some(ticket));
        match result {
            CdclResult::Sat(assignment) => {
                let checked: Vec<Option<usize>> = assignment.iter().map(|&v| Some(v)).collect();
                assert!(
                    self.all_facets_legal(&checked),
                    "CDCL assignment must satisfy every facet"
                );
                (Some(SearchResult::Solvable { assignment }), stats)
            }
            CdclResult::Unsat => (Some(SearchResult::Unsolvable), stats),
            CdclResult::Interrupted => (None, stats),
        }
    }

    /// The mode-dispatching front door: [`SymmetricSearch::solve_governed`]
    /// generalized over [`SearchMode`]. `None` means no verdict — the
    /// ticket tripped, or the (incomplete) local mode exhausted its
    /// restarts without completing a witness.
    ///
    /// Tiny instances route to the reference backtracker whatever the
    /// mode (engine setup costs more than the whole search there, and
    /// the backtracker is complete, so even `Local` gets full verdicts).
    ///
    /// # Panics
    ///
    /// As [`SymmetricSearch::solve_with`]: a returned witness failing
    /// the facet-by-facet re-check is a soundness bug.
    #[must_use]
    pub fn solve_mode_governed(
        &self,
        config: &CdclConfig,
        mode: SearchMode,
        ticket: Option<&Ticket>,
    ) -> (Option<SearchResult>, SearchStats) {
        if self.facet_count() <= TINY_INSTANCE_FACETS {
            return match ticket {
                Some(t) => self.solve_governed(config, t),
                None => {
                    let (result, stats) = self.solve_with(config);
                    (Some(result), stats)
                }
            };
        }
        match mode {
            SearchMode::Cdcl => match ticket {
                Some(t) => self.solve_cdcl_governed(config, t),
                None => {
                    let (result, stats) = self.solve_cdcl_with(config);
                    (Some(result), stats)
                }
            },
            SearchMode::Race => {
                let instance = self.instance();
                let (result, stats) = local::solve_race_governed(
                    &instance,
                    config,
                    &Self::local_config(config),
                    ticket,
                );
                match result {
                    CdclResult::Sat(assignment) => {
                        let checked: Vec<Option<usize>> =
                            assignment.iter().map(|&v| Some(v)).collect();
                        assert!(
                            self.all_facets_legal(&checked),
                            "race winner's assignment must satisfy every facet"
                        );
                        (Some(SearchResult::Solvable { assignment }), stats)
                    }
                    CdclResult::Unsat => (Some(SearchResult::Unsolvable), stats),
                    CdclResult::Interrupted => (None, stats),
                }
            }
            SearchMode::Local => {
                let instance = self.instance();
                let warm = config.warm_start.as_deref().map(Vec::as_slice);
                let out =
                    local::solve_local(&instance, &Self::local_config(config), warm, None, ticket);
                let mut stats = SearchStats {
                    local_steps: out.steps,
                    local_restarts: out.restarts,
                    workers: 1,
                    ..SearchStats::default()
                };
                match out.assignment {
                    Some(assignment) => {
                        stats.local_won = true;
                        let checked: Vec<Option<usize>> =
                            assignment.iter().map(|&v| Some(v)).collect();
                        assert!(
                            self.all_facets_legal(&checked),
                            "local-search witness must satisfy every facet"
                        );
                        (Some(SearchResult::Solvable { assignment }), stats)
                    }
                    None => (None, stats),
                }
            }
        }
    }

    /// [`SymmetricSearch::solve_mode_governed`] without a ticket.
    #[must_use]
    pub fn solve_mode_with(
        &self,
        config: &CdclConfig,
        mode: SearchMode,
    ) -> (Option<SearchResult>, SearchStats) {
        self.solve_mode_governed(config, mode, None)
    }

    /// The local engine's configuration, derived from the CDCL one so
    /// portfolio-style seed diversity carries over to the race.
    fn local_config(config: &CdclConfig) -> crate::local::LocalConfig {
        crate::local::LocalConfig {
            seed: config.seed ^ 0x0010_ca1c_0a11_5eed,
            ..crate::local::LocalConfig::default()
        }
    }

    /// Lifts a round-`r−1` decision map through the subdivision into
    /// per-class warm-start values (`1..=m`; `0` = unseeded) for this
    /// round-`r` search: each round-`r` class's own previous-round
    /// subview projects to a parent class of the `r−1` quotient, whose
    /// decided value seeds it. Facets of `χ^r` project to facets of
    /// `χ^{r−1}` with the same value multiset, so a lifted SAT map is
    /// again SAT — warm-seeded dives complete without conflicts.
    ///
    /// All-zero (never harmful, merely unseeded) when `parent` is not
    /// the matching `(n, r−1)` map.
    #[must_use]
    pub fn lift_warm_start(&self, parent: &DecisionMap) -> Vec<u32> {
        let matching = self.spec.n() == parent.n()
            && self
                .rounds
                .is_some_and(|r| r >= 1 && r - 1 == parent.rounds())
            && parent.rounds() >= 1;
        if !matching {
            return vec![0; self.system.class_count];
        }
        self.classes()
            .iter()
            .map(|view| {
                let View::Round { id, seen } = view else {
                    return 0;
                };
                seen.iter()
                    .find(|(q, _)| q == id)
                    .and_then(|(_, prev)| parent.classes.binary_search(&prev.signature()).ok())
                    .map_or(0, |i| parent.assignment[i] as u32)
            })
            .collect()
    }

    /// The retained seed engine: weight-ordered backtracking with unit
    /// propagation — the reference oracle the CDCL engine is tested
    /// against.
    #[must_use]
    pub fn solve_reference(&self) -> SearchResult {
        self.solve_reference_budgeted(u64::MAX)
            .expect("unbounded budget cannot exhaust")
    }

    /// [`solve_reference`](Self::solve_reference) with a node budget
    /// (counted in propagation-augmented assignments); `None` means the
    /// budget was exhausted before a verdict — used by the benchmark
    /// harness to time out the baseline deterministically.
    #[must_use]
    pub fn solve_reference_budgeted(&self, max_nodes: u64) -> Option<SearchResult> {
        self.solve_reference_gate(max_nodes, None).0
    }

    /// The reference backtracker under a governance ticket: nodes are
    /// charged against the ticket's node budget at a 64-node stride, so
    /// deadlines, cancellation and injected faults all land within one
    /// polling interval. `None` means the ticket tripped; the counters
    /// report the nodes visited so far as `decisions` (the reference
    /// engine's only meaningful counter).
    #[must_use]
    pub fn solve_reference_governed(&self, ticket: &Ticket) -> (Option<SearchResult>, SearchStats) {
        let (result, visited) = self.solve_reference_gate(u64::MAX, Some(ticket));
        let stats = SearchStats {
            workers: 1,
            decisions: visited,
            ..SearchStats::default()
        };
        (result, stats)
    }

    /// Shared core of the budgeted/governed reference paths: returns
    /// the verdict (`None` when the gate closed first) and the number
    /// of nodes visited.
    fn solve_reference_gate(
        &self,
        max_nodes: u64,
        ticket: Option<&Ticket>,
    ) -> (Option<SearchResult>, u64) {
        let k = self.system.class_count;
        // Order classes by descending weight: most-constrained first.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(self.system.class_weight[c]));
        let mut assignment: Vec<Option<usize>> = vec![None; k];
        // Value symmetry breaking is sound only for fully symmetric specs.
        let value_symmetric = self.spec.is_symmetric();
        let mut gate = NodeGate {
            remaining: max_nodes,
            visited: 0,
            ticket,
        };
        let solvable = self.backtrack(&order, 0, &mut assignment, value_symmetric, &mut gate);
        let result = solvable.map(|solvable| {
            if solvable {
                SearchResult::Solvable {
                    assignment: assignment
                        .into_iter()
                        .map(|v| v.expect("complete"))
                        .collect(),
                }
            } else {
                SearchResult::Unsolvable
            }
        });
        (result, gate.visited)
    }

    /// The quotiented instance handed to the CDCL engine.
    fn instance(&self) -> cdcl::Instance {
        let m = self.spec.m();
        let facets: Vec<Vec<(u32, u32)>> = self
            .system
            .facet_classes
            .chunks_exact(self.system.width.max(1))
            .map(|facet| {
                let mut runs: Vec<(u32, u32)> = Vec::with_capacity(facet.len());
                for &c in facet {
                    match runs.last_mut() {
                        Some((class, mult)) if *class == c => *mult += 1,
                        _ => runs.push((c, 1)),
                    }
                }
                runs
            })
            .collect();
        // Precedence order mirrors the reference engine's branching
        // order: descending facet-occurrence weight.
        let mut precedence_order: Vec<u32> = (0..self.system.class_count as u32).collect();
        precedence_order.sort_by_key(|&c| std::cmp::Reverse(self.system.class_weight[c as usize]));
        cdcl::Instance {
            classes: self.system.class_count,
            values: m,
            lower: (1..=m).map(|v| self.spec.lower(v) as u32).collect(),
            upper: (1..=m).map(|v| self.spec.upper(v) as u32).collect(),
            facets,
            class_weight: self.system.class_weight.clone(),
            value_symmetric: self.spec.is_symmetric(),
            precedence_order,
            class_perms: self.class_symmetries(),
        }
    }

    /// The system's verified class permutations (see
    /// [`ConstraintSystem::class_perms`]).
    fn class_symmetries(&self) -> Vec<Vec<u32>> {
        self.system.class_perms().to_vec()
    }

    fn backtrack(
        &self,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<Option<usize>>,
        value_symmetric: bool,
        gate: &mut NodeGate,
    ) -> Option<bool> {
        // Skip classes already fixed by propagation.
        let mut idx = depth;
        while idx < order.len() && assignment[order[idx]].is_some() {
            idx += 1;
        }
        if idx == order.len() {
            return Some(self.all_facets_legal(assignment));
        }
        let class = order[idx];
        let max_used = assignment.iter().flatten().copied().max().unwrap_or(0);
        let value_cap = if value_symmetric {
            // Interchangeable values: trying more than one fresh value at a
            // decision point is redundant (propagated values stay sound:
            // a *forced* fresh value is unique only when no second fresh
            // value exists, see assign_and_propagate).
            (max_used + 1).min(self.spec.m())
        } else {
            self.spec.m()
        };
        for value in 1..=value_cap {
            if !gate.visit() {
                return None;
            }
            let mut trail = Vec::new();
            if self.assign_and_propagate(class, value, assignment, &mut trail) {
                match self.backtrack(order, idx + 1, assignment, value_symmetric, gate) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
            for c in trail {
                assignment[c] = None;
            }
        }
        Some(false)
    }

    /// Assigns `class := value`, then runs unit propagation: any facet
    /// left with a single distinct unassigned class whose legal completion
    /// is unique forces that class, transitively. Records every assignment
    /// made on `trail` (for undo) and returns `false` on conflict.
    fn assign_and_propagate(
        &self,
        class: usize,
        value: usize,
        assignment: &mut [Option<usize>],
        trail: &mut Vec<usize>,
    ) -> bool {
        let m = self.spec.m();
        assignment[class] = Some(value);
        trail.push(class);
        let mut queue = vec![class];
        while let Some(c) = queue.pop() {
            for &f in self.system.class_facets(c) {
                let facet = self.system.facet(f as usize);
                if !self.facet_completable(facet, assignment) {
                    return false;
                }
                // Distinct unassigned classes of this facet (facet sorted).
                let mut pending = facet
                    .iter()
                    .map(|&x| x as usize)
                    .filter(|&x| assignment[x].is_none())
                    .collect::<Vec<_>>();
                pending.dedup();
                if pending.len() != 1 {
                    continue;
                }
                let x = pending[0];
                let mut allowed = Vec::new();
                for v in 1..=m {
                    assignment[x] = Some(v);
                    if self.facet_completable(facet, assignment) {
                        allowed.push(v);
                        if allowed.len() > 1 {
                            break;
                        }
                    }
                }
                assignment[x] = None;
                match allowed.as_slice() {
                    [] => return false,
                    [only] => {
                        assignment[x] = Some(*only);
                        trail.push(x);
                        queue.push(x);
                    }
                    _ => {}
                }
            }
        }
        true
    }

    fn facet_completable(&self, facet: &[u32], assignment: &[Option<usize>]) -> bool {
        let m = self.spec.m();
        {
            let mut counts = vec![0usize; m];
            let mut unassigned = 0usize;
            for &c in facet {
                match assignment[c as usize] {
                    Some(v) => counts[v - 1] += 1,
                    None => unassigned += 1,
                }
            }
            let mut deficit = 0usize;
            let mut capacity = 0usize;
            for v in 1..=m {
                if counts[v - 1] > self.spec.upper(v) {
                    // Counts only grow as the assignment extends, so an
                    // upper-bound violation can never heal.
                    return false;
                }
                deficit += self.spec.lower(v).saturating_sub(counts[v - 1]);
                capacity += self.spec.upper(v) - counts[v - 1];
            }
            if deficit > unassigned || unassigned > capacity {
                return false;
            }
        }
        true
    }

    fn all_facets_legal(&self, assignment: &[Option<usize>]) -> bool {
        let m = self.spec.m();
        for facet in self
            .system
            .facet_classes
            .chunks_exact(self.system.width.max(1))
        {
            let mut counts = vec![0usize; m];
            for &c in facet {
                match assignment[c as usize] {
                    Some(v) => counts[v - 1] += 1,
                    None => return false,
                }
            }
            for v in 1..=m {
                if counts[v - 1] < self.spec.lower(v) || counts[v - 1] > self.spec.upper(v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Maps one window of facets to its distinct sorted class multisets,
/// each packed into one `u128` word — the per-chunk streaming step of
/// [`ConstraintSystem::from_complex`]'s constraint construction.
/// Nothing is allocated per facet; duplicates die in the reused scratch
/// buffer.
fn facet_class_window(
    facet_data: &[crate::complex::VertexId],
    n: usize,
    vertex_class: &[u32],
    bits: u32,
) -> HashSet<u128> {
    let mut distinct: HashSet<u128> = HashSet::new();
    let mut scratch: Vec<u32> = vec![0; n];
    for facet in facet_data.chunks_exact(n) {
        for (slot, &v) in scratch.iter_mut().zip(facet) {
            *slot = vertex_class[v as usize];
        }
        scratch.sort_unstable();
        distinct.insert(pack_multiset(&scratch, bits));
    }
    distinct
}

/// Convenience: is `spec` solvable by an `r`-round comparison-based IIS
/// protocol?
#[deprecated(
    since = "0.1.0",
    note = "route round-bounded queries through the engine \
            (`gsb_engine::Query::solvable_in_rounds`), which adds caching, \
            replayable evidence and cross-engine agreement; or use \
            `SymmetricSearch::new(spec, rounds).solve()` directly"
)]
#[must_use]
pub fn solvable_in_rounds(spec: &GsbSpec, rounds: usize) -> SearchResult {
    SymmetricSearch::new(spec.clone(), rounds).solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_core::SymmetricGsb;

    /// Local (non-deprecated) shorthand shadowing the deprecated free
    /// function; `deprecated_free_function_still_answers` keeps the
    /// public shim itself covered.
    fn solvable_in_rounds(spec: &GsbSpec, rounds: usize) -> SearchResult {
        SymmetricSearch::new(spec.clone(), rounds).solve()
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_free_function_still_answers() {
        let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        assert!(super::solvable_in_rounds(&spec, 1).is_solvable());
    }

    #[test]
    fn zero_rounds_allows_only_constant_maps() {
        // At r = 0 every initial view is order-isomorphic, so all
        // processes decide the same value: solvable iff some value v has
        // u_v ≥ n and ℓ_w = 0 elsewhere.
        let ok = SymmetricGsb::new(3, 2, 0, 3).unwrap().to_spec();
        assert!(solvable_in_rounds(&ok, 0).is_solvable());
        let not = SymmetricGsb::loose_renaming(3).unwrap().to_spec();
        assert!(!solvable_in_rounds(&not, 0).is_solvable());
    }

    #[test]
    fn renaming_n2_needs_three_names() {
        // ⟨2,3,0,1⟩ solvable in one round; ⟨2,2,·⟩ (perfect renaming) not.
        let three = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        assert!(solvable_in_rounds(&three, 1).is_solvable());
        let two = SymmetricGsb::renaming(2, 2).unwrap().to_spec();
        for r in 0..=3 {
            assert!(!solvable_in_rounds(&two, r).is_solvable(), "r = {r}");
        }
    }

    #[test]
    fn theorem_11_election_unsolvable_n2() {
        let election = gsb_core::GsbSpec::election(2).unwrap();
        for r in 0..=3 {
            assert!(!solvable_in_rounds(&election, r).is_solvable(), "r = {r}");
        }
    }

    #[test]
    fn theorem_11_election_unsolvable_n3() {
        let election = gsb_core::GsbSpec::election(3).unwrap();
        for r in 0..=2 {
            assert!(!solvable_in_rounds(&election, r).is_solvable(), "r = {r}");
        }
    }

    #[test]
    fn wsb_unsolvable_at_prime_power_n() {
        // n = 2, 3 are prime powers: WSB unsolvable (Theorem 10 + [17]).
        //
        // n = 3 through r = 2 — the 81-class not-all-equal system whose
        // unsolvability is the index-lemma counting fact of [17]. The
        // seed's backtracking needed ~100 s for the r = 2 certificate;
        // the CDCL engine closes it in well under a second (see
        // `tests/search_frontier.rs` for the pinned frontier).
        let wsb2 = SymmetricGsb::wsb(2).unwrap().to_spec();
        for r in 0..=3 {
            assert!(!solvable_in_rounds(&wsb2, r).is_solvable(), "n=2 r={r}");
        }
        let wsb3 = SymmetricGsb::wsb(3).unwrap().to_spec();
        for r in 0..=2 {
            assert!(!solvable_in_rounds(&wsb3, r).is_solvable(), "n=3 r={r}");
        }
    }

    #[test]
    fn is_renaming_bound_matches_search_n3() {
        // One IS round renames into n(n+1)/2 = 6 names (rank-in-view rule);
        // the search must find a map for m = 6.
        let six = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
        assert!(solvable_in_rounds(&six, 1).is_solvable());
    }

    #[test]
    fn one_round_renaming_n3_cannot_reach_2n_minus_1() {
        // With one IS round, 5 names do not suffice for n = 3 (the
        // rank-based lower bound for one-shot IS renaming); more rounds
        // are needed for (2n−1)-renaming.
        let five = SymmetricGsb::loose_renaming(3).unwrap().to_spec();
        assert!(!solvable_in_rounds(&five, 1).is_solvable());
    }

    #[test]
    fn slot_tasks_match_wsb_when_k_is_2() {
        // 2-slot ≡ WSB: same search outcome at every checked round.
        let wsb = SymmetricGsb::wsb(3).unwrap().to_spec();
        let slot = SymmetricGsb::slot(3, 2).unwrap().to_spec();
        for r in 0..=1 {
            assert_eq!(
                solvable_in_rounds(&wsb, r).is_solvable(),
                solvable_in_rounds(&slot, r).is_solvable(),
                "r = {r}"
            );
        }
    }

    #[test]
    fn found_assignments_satisfy_every_facet() {
        let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        let search = SymmetricSearch::new(spec.clone(), 1);
        match search.solve() {
            SearchResult::Solvable { assignment } => {
                // Re-check independently of the search's own bookkeeping.
                let complex = protocol_complex(2, 1);
                let again = SymmetricSearch::over_complex(spec.clone(), &complex);
                let option_assignment: Vec<Option<usize>> =
                    assignment.iter().map(|&v| Some(v)).collect();
                assert!(again.all_facets_legal(&option_assignment));
            }
            SearchResult::Unsolvable => panic!("expected solvable"),
        }
    }

    #[test]
    fn class_counts_are_small() {
        // Documents the symmetry quotient's effectiveness: χ²(Δ²) has
        // hundreds of vertices but far fewer classes.
        let search = SymmetricSearch::new(SymmetricGsb::wsb(3).unwrap().to_spec(), 2);
        assert!(search.classes().len() < 100, "{}", search.classes().len());
        assert_eq!(search.facet_count(), 169);
    }

    #[test]
    fn trivial_single_value_task_solvable_everywhere() {
        let spec = SymmetricGsb::new(3, 1, 0, 3).unwrap().to_spec();
        for r in 0..=2 {
            assert!(solvable_in_rounds(&spec, r).is_solvable());
        }
    }

    #[test]
    fn reference_engine_matches_cdcl_on_small_instances() {
        // Spot equivalence on both verdict kinds; the full zoo sweep
        // lives in `tests/engine_equivalence.rs`.
        for (spec, r) in [
            (SymmetricGsb::renaming(2, 3).unwrap().to_spec(), 1),
            (SymmetricGsb::wsb(3).unwrap().to_spec(), 1),
            (SymmetricGsb::renaming(3, 6).unwrap().to_spec(), 1),
        ] {
            let search = SymmetricSearch::new(spec, r);
            assert_eq!(
                search.solve().is_solvable(),
                search.solve_reference().is_solvable()
            );
        }
    }

    #[test]
    fn reference_budget_exhausts_cleanly() {
        let spec = SymmetricGsb::wsb(3).unwrap().to_spec();
        let search = SymmetricSearch::new(spec, 1);
        assert!(search.solve_reference_budgeted(0).is_none());
        assert!(search.solve_reference_budgeted(u64::MAX).is_some());
    }

    #[test]
    fn fused_and_full_preps_hand_the_solver_identical_instances() {
        // The orbit-quotient pipeline must be *byte-identical* to the
        // materialized-complex path at the instance level: same classes
        // in the same canonical order, same facet runs, same weights,
        // same precedence, same verified symmetries.
        for (spec, r) in [
            (SymmetricGsb::renaming(2, 3).unwrap().to_spec(), 1usize),
            (SymmetricGsb::wsb(3).unwrap().to_spec(), 2),
            (gsb_core::GsbSpec::election(3).unwrap(), 2),
            (SymmetricGsb::renaming(4, 10).unwrap().to_spec(), 1),
            (SymmetricGsb::wsb(4).unwrap().to_spec(), 1),
        ] {
            let full = SymmetricSearch::new(spec.clone(), r);
            let fused = SymmetricSearch::from_spec_streaming(spec.clone(), r);
            assert_eq!(full.classes(), fused.classes(), "{spec} r={r}");
            assert_eq!(
                full.system.class_weight, fused.system.class_weight,
                "{spec} r={r}"
            );
            // The orbit pipeline additionally mines class permutations
            // out of its group image table (the complex path has no
            // group table to mine), so the verified-symmetry sets may
            // legitimately differ: fused ⊇ full. Everything else must
            // still be byte-identical.
            let mut full_inst = full.instance();
            let mut fused_inst = fused.instance();
            let full_perms = std::mem::take(&mut full_inst.class_perms);
            let fused_perms = std::mem::take(&mut fused_inst.class_perms);
            assert_eq!(full_inst, fused_inst, "{spec} r={r}");
            for perm in &full_perms {
                assert!(
                    fused_perms.contains(perm),
                    "fused symmetries cover the full path's at {spec} r={r}"
                );
            }
        }
    }

    #[test]
    fn tiny_instances_route_through_the_reference_backtracker() {
        // renaming(3,6) r=1 is 13 distinct constraints — the front door
        // must skip CDCL setup and report bare one-worker counters.
        let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
        let search = SymmetricSearch::new(spec, 1);
        assert!(search.facet_count() <= TINY_INSTANCE_FACETS);
        let (result, stats) = search.solve_with(&CdclConfig::default());
        assert!(result.is_solvable());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.decisions, 0, "no CDCL engine ran");
        // Above the threshold the engine still runs and counts work.
        let wsb = SymmetricGsb::wsb(3).unwrap().to_spec();
        let big = SymmetricSearch::new(wsb, 2);
        assert!(big.facet_count() > TINY_INSTANCE_FACETS);
        let (_, stats) = big.solve_with(&CdclConfig::default());
        assert!(stats.conflicts > 0);
    }

    #[test]
    fn orbit_path_mines_verified_class_permutations() {
        // The streamed path mines class-permutation candidates from its
        // group image table; every survivor is re-verified, and the
        // reversal candidate guarantees at least one verified symmetry
        // on these quotients.
        for (n, r) in [(3usize, 1usize), (3, 2), (4, 1)] {
            let (sys, _) = ConstraintSystem::streamed(n, r);
            let count = sys.verified_class_perm_count();
            println!(
                "mined n={n} r={r}: classes={} perms={count}",
                sys.class_count()
            );
            assert!(count >= 1, "reversal must verify at n={n} r={r}");
        }
    }

    #[test]
    fn class_symmetries_are_verified_permutations() {
        let search = SymmetricSearch::new(SymmetricGsb::wsb(3).unwrap().to_spec(), 1);
        for perm in search.class_symmetries() {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), search.classes().len(), "bijection");
            assert!(
                perm.iter().enumerate().any(|(i, &p)| p != i as u32),
                "identity is filtered out"
            );
        }
    }

    #[test]
    fn multiworker_portfolio_agrees_on_the_frontier_instance() {
        // Force the scoped-thread portfolio (with learned-clause sharing
        // and cancellation) on the real 81-class instance, independent of
        // host core count.
        let search = SymmetricSearch::new(SymmetricGsb::wsb(3).unwrap().to_spec(), 2);
        let instance = search.instance();
        let (result, stats) =
            crate::cdcl::solve_portfolio_width(&instance, &CdclConfig::default(), 4);
        assert_eq!(result, CdclResult::Unsat);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn decision_map_replays_facet_by_facet() {
        let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
        let search = SymmetricSearch::new(spec.clone(), 1);
        let result = search.solve();
        let map = search
            .decision_map(&result)
            .expect("SAT result with known rounds");
        assert_eq!(map.rounds(), 1);
        assert_eq!(map.n(), 3);
        map.check(&spec).expect("genuine witness must replay");
        // Lookup by view signature agrees with the raw assignment.
        for (i, class) in map.classes().iter().enumerate() {
            assert_eq!(map.value_of(class), Some(map.assignment()[i]));
        }
    }

    #[test]
    fn decision_map_check_rejects_tampering() {
        let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
        let search = SymmetricSearch::new(spec.clone(), 1);
        let classes = search.classes().len();
        // All-ones violates u = 1 on every facet.
        let forged = DecisionMap::rebuild(3, 1, vec![1; classes]).unwrap();
        assert!(matches!(
            forged.check(&spec),
            Err(Error::IllegalFacet { .. })
        ));
        // A value outside [1..m].
        let out_of_range = DecisionMap::rebuild(3, 1, vec![99; classes]).unwrap();
        assert!(matches!(
            out_of_range.check(&spec),
            Err(Error::ValueOutOfRange { .. })
        ));
        // Wrong arity for the complex.
        assert!(matches!(
            DecisionMap::rebuild(3, 1, vec![1; classes + 1]),
            Err(Error::ClassCountMismatch { .. })
        ));
        // Wrong process count.
        let other = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        let map = search.decision_map(&search.solve()).unwrap();
        assert!(matches!(
            map.check(&other),
            Err(Error::ProcessCountMismatch { .. })
        ));
    }

    #[test]
    fn decision_map_unavailable_when_unsat_or_rounds_unknown() {
        let wsb = SymmetricGsb::wsb(3).unwrap().to_spec();
        let search = SymmetricSearch::new(wsb.clone(), 1);
        let result = search.solve();
        assert!(!result.is_solvable());
        assert!(search.decision_map(&result).is_none());
        assert_eq!(result.assignment(), None);
        // Explicit complexes have no recorded round count.
        let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
        let complex = protocol_complex(3, 1);
        let search = SymmetricSearch::over_complex(spec, &complex);
        assert_eq!(search.rounds(), None);
        let sat = search.solve();
        assert!(sat.is_solvable());
        assert!(search.decision_map(&sat).is_none());
    }

    #[test]
    fn search_result_display_is_uniform() {
        let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        let sat = SymmetricSearch::new(spec, 1).solve();
        assert!(sat.to_string().contains("solvable"));
        assert!(SearchResult::Unsolvable.to_string().contains("unsolvable"));
    }

    #[test]
    fn solver_stats_reflect_work() {
        let search = SymmetricSearch::new(SymmetricGsb::wsb(3).unwrap().to_spec(), 2);
        let (result, stats) = search.solve_with(&CdclConfig::default());
        assert!(!result.is_solvable());
        assert!(stats.conflicts > 0);
        assert!(stats.propagations > 0);
        assert!(stats.workers >= 1);
    }
}
