//! Greedy/min-conflicts local-search completion for suspected-SAT
//! instances, and the CDCL-vs-local completion race.
//!
//! The quotiented decision-map instance is a finite-domain CSP: one
//! value in `1..=m` per symmetry class, every facet's value multiset
//! inside the spec's per-value windows. When a decision map *exists*,
//! completing one is usually far easier than the CDCL engine's
//! refutation-grade search — a greedy weight-order construction
//! followed by min-conflicts repair walks straight into a witness. The
//! engine here can never prove unsolvability, so [`solve_race_governed`]
//! races it against a cancellable CDCL lane (reusing the portfolio's
//! first-finisher-wins plumbing): whichever engine finishes first stops
//! the other, and a local win is converted into the exact same
//! `CdclResult::Sat` witness shape so downstream evidence replay (facet
//! by facet through `Evidence::check`) is engine-agnostic.
//!
//! Determinism: runs are seeded xorshift walks with a fixed restart
//! schedule; the same `(instance, config)` pair always visits the same
//! states. Governance: the inner move loop polls its ticket on a fixed
//! step stride (registered in `ci/check_ticket_polls.sh`), so deadlines,
//! budgets, and fault injection cover this engine exactly like the
//! conflict-driven one.

use crate::cdcl::{solve_single_cancellable, CdclConfig, CdclResult, Instance, SearchStats};
use gsb_core::govern::{Stopped, Ticket};
use std::sync::atomic::{AtomicBool, Ordering};

/// Tuning knobs of one local-search run.
#[derive(Debug, Clone)]
pub struct LocalConfig {
    /// Seed of the xorshift RNG driving facet/class/value picks.
    pub seed: u64,
    /// Restart attempts before giving up (local search cannot refute;
    /// exhaustion means "no witness found", never "unsolvable").
    pub restarts: u64,
    /// Min-conflicts repair moves per restart.
    pub steps_per_restart: u64,
    /// Percentage (`0..100`) of repair moves that take a random value
    /// instead of the best-delta value (noise against local minima).
    pub walk_pct: u32,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            seed: 0x51ab_1e5e_ed00_7bad,
            restarts: 64,
            steps_per_restart: 400_000,
            walk_pct: 8,
        }
    }
}

/// What one local-search run produced.
pub(crate) struct LocalOutcome {
    /// A facet-legal assignment (`1..=m` per class), when found.
    pub assignment: Option<Vec<usize>>,
    /// Repair moves taken across all restarts.
    pub steps: u64,
    /// Restarts actually begun.
    pub restarts: u64,
    /// Set when a governance ticket tripped mid-run.
    pub stopped: Option<Stopped>,
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next() % bound as u64) as usize
    }
}

/// Min-conflicts state over one instance: the current assignment, the
/// per-`(facet, value)` multiplicity-weighted counts, each facet's
/// cached violation, and the violated-facet worklist with its position
/// index for O(1) insert/remove.
struct Repair<'a> {
    inst: &'a Instance,
    /// CSR of facet memberships per class: `(facet, multiplicity)`.
    class_facets_off: Vec<u32>,
    class_facets: Vec<(u32, u32)>,
    /// Current value index (`0..m`) per class.
    assign: Vec<usize>,
    /// Assigned multiplicity per `(facet, value)`, indexed `f·m + vi`.
    counts: Vec<u32>,
    /// Cached window violation per facet.
    violation: Vec<u32>,
    /// Facets with nonzero violation, unordered.
    violated: Vec<u32>,
    /// `position[f]` = index of `f` in `violated`, `u32::MAX` if absent.
    position: Vec<u32>,
}

impl<'a> Repair<'a> {
    fn new(inst: &'a Instance) -> Repair<'a> {
        let m = inst.values;
        let mut off = vec![0u32; inst.classes + 1];
        for facet in &inst.facets {
            for &(c, _) in facet {
                off[c as usize + 1] += 1;
            }
        }
        for i in 1..off.len() {
            off[i] += off[i - 1];
        }
        let mut cursor = off.clone();
        let mut class_facets = vec![(0u32, 0u32); *off.last().unwrap_or(&0) as usize];
        for (f, facet) in inst.facets.iter().enumerate() {
            for &(c, mult) in facet {
                class_facets[cursor[c as usize] as usize] = (f as u32, mult);
                cursor[c as usize] += 1;
            }
        }
        Repair {
            inst,
            class_facets_off: off,
            class_facets,
            assign: vec![0; inst.classes],
            counts: vec![0; inst.facets.len() * m],
            violation: vec![0; inst.facets.len()],
            violated: Vec::new(),
            position: vec![u32::MAX; inst.facets.len()],
        }
    }

    /// Window violation of one facet from its current counts.
    fn facet_violation(&self, f: usize) -> u32 {
        let m = self.inst.values;
        let counts = &self.counts[f * m..(f + 1) * m];
        let mut v = 0u32;
        for ((&c, &u), &l) in counts.iter().zip(&self.inst.upper).zip(&self.inst.lower) {
            v += c.saturating_sub(u) + l.saturating_sub(c);
        }
        v
    }

    fn set_violation(&mut self, f: usize, value: u32) {
        let old = self.violation[f];
        self.violation[f] = value;
        if old == 0 && value > 0 {
            self.position[f] = self.violated.len() as u32;
            self.violated.push(f as u32);
        } else if old > 0 && value == 0 {
            let pos = self.position[f] as usize;
            let last = *self.violated.last().expect("violated facet recorded");
            self.violated.swap_remove(pos);
            self.position[f] = u32::MAX;
            if pos < self.violated.len() {
                self.position[last as usize] = pos as u32;
            }
        }
    }

    /// Greedy construction: assign classes in the instance's
    /// weight-descending `precedence_order`, picking for each class the
    /// value with the smallest *over-window* penalty across its facets
    /// (deficits can still be repaired by later classes, overflows
    /// cannot), breaking ties by the RNG so restarts diversify.
    fn construct(&mut self, warm: Option<&[u32]>, rng: &mut XorShift) {
        let m = self.inst.values;
        self.counts.iter_mut().for_each(|c| *c = 0);
        let order: Vec<u32> = if self.inst.precedence_order.len() == self.inst.classes {
            self.inst.precedence_order.clone()
        } else {
            (0..self.inst.classes as u32).collect()
        };
        for &c in &order {
            let c = c as usize;
            // A warm seed pins the class's first-restart value outright;
            // later restarts fall through to the greedy pick.
            let seeded = warm
                .and_then(|w| w.get(c))
                .filter(|&&v| (1..=m as u32).contains(&v))
                .map(|&v| (v - 1) as usize);
            let vi = if let Some(vi) = seeded {
                vi
            } else {
                let mut best = 0usize;
                let mut best_penalty = u64::MAX;
                let rotate = rng.below(m);
                for probe in 0..m {
                    let cand = (probe + rotate) % m;
                    let mut penalty = 0u64;
                    let (s, e) = (
                        self.class_facets_off[c] as usize,
                        self.class_facets_off[c + 1] as usize,
                    );
                    for &(f, mult) in &self.class_facets[s..e] {
                        let count = self.counts[f as usize * m + cand] + mult;
                        penalty += u64::from(count.saturating_sub(self.inst.upper[cand]));
                    }
                    if penalty < best_penalty {
                        best_penalty = penalty;
                        best = cand;
                    }
                }
                best
            };
            self.assign[c] = vi;
            let (s, e) = (
                self.class_facets_off[c] as usize,
                self.class_facets_off[c + 1] as usize,
            );
            for i in s..e {
                let (f, mult) = self.class_facets[i];
                self.counts[f as usize * m + vi] += mult;
            }
        }
        self.violated.clear();
        self.position.iter_mut().for_each(|p| *p = u32::MAX);
        for f in 0..self.inst.facets.len() {
            self.violation[f] = 0;
            let v = self.facet_violation(f);
            self.set_violation(f, v);
        }
    }

    /// Total-violation delta of moving class `c` to value `vi`, without
    /// applying the move.
    fn move_delta(&self, c: usize, vi: usize) -> i64 {
        let m = self.inst.values;
        let cur = self.assign[c];
        if cur == vi {
            return 0;
        }
        let mut delta = 0i64;
        let (s, e) = (
            self.class_facets_off[c] as usize,
            self.class_facets_off[c + 1] as usize,
        );
        for &(f, mult) in &self.class_facets[s..e] {
            let f = f as usize;
            let before = i64::from(self.violation[f]);
            let old_cur = self.counts[f * m + cur];
            let old_new = self.counts[f * m + vi];
            let new_cur = old_cur - mult;
            let new_new = old_new + mult;
            let part = |count: u32, vx: usize| -> i64 {
                i64::from(count.saturating_sub(self.inst.upper[vx]))
                    + i64::from(self.inst.lower[vx].saturating_sub(count))
            };
            let after = before - part(old_cur, cur) - part(old_new, vi)
                + part(new_cur, cur)
                + part(new_new, vi);
            delta += after - before;
        }
        delta
    }

    /// Apply the move and refresh the touched facets' cached violations.
    fn apply_move(&mut self, c: usize, vi: usize) {
        let m = self.inst.values;
        let cur = self.assign[c];
        if cur == vi {
            return;
        }
        self.assign[c] = vi;
        let (s, e) = (
            self.class_facets_off[c] as usize,
            self.class_facets_off[c + 1] as usize,
        );
        for i in s..e {
            let (f, mult) = self.class_facets[i];
            let f = f as usize;
            self.counts[f * m + cur] -= mult;
            self.counts[f * m + vi] += mult;
            let v = self.facet_violation(f);
            self.set_violation(f, v);
        }
    }
}

/// One deterministic local-search run. `warm` seeds the first restart's
/// construction (the lifted r−1 decision map); `cancel` is the race's
/// first-finisher-wins flag; the ticket is polled on a fixed stride.
pub(crate) fn solve_local(
    inst: &Instance,
    cfg: &LocalConfig,
    warm: Option<&[u32]>,
    cancel: Option<&AtomicBool>,
    ticket: Option<&Ticket>,
) -> LocalOutcome {
    const POLL_STRIDE: u64 = 4096;
    let m = inst.values;
    let mut out = LocalOutcome {
        assignment: None,
        steps: 0,
        restarts: 0,
        stopped: None,
    };
    if inst.classes == 0 || m == 0 {
        out.assignment = (m > 0 || inst.facets.is_empty()).then(Vec::new);
        return out;
    }
    let mut repair = Repair::new(inst);
    let mut rng = XorShift(cfg.seed | 1);
    let mut poll_countdown = POLL_STRIDE;
    'restarts: for restart in 0..cfg.restarts.max(1) {
        out.restarts += 1;
        repair.construct((restart == 0).then_some(warm).flatten(), &mut rng);
        if let Some(t) = ticket {
            // ticket.check poll site (local-search restart construction)
            if let Err(stop) = t
                .check()
                .and_then(|()| t.charge_decisions(inst.classes as u64))
            {
                out.stopped = Some(stop);
                break 'restarts;
            }
        }
        for _ in 0..cfg.steps_per_restart {
            if repair.violated.is_empty() {
                let assignment: Vec<usize> = repair.assign.iter().map(|&vi| vi + 1).collect();
                out.assignment = Some(assignment);
                break 'restarts;
            }
            poll_countdown -= 1;
            if poll_countdown == 0 {
                poll_countdown = POLL_STRIDE;
                if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                    break 'restarts;
                }
                if let Some(t) = ticket {
                    // ticket.check poll site (local-search move stride)
                    if let Err(stop) = t.check().and_then(|()| t.charge_decisions(POLL_STRIDE)) {
                        out.stopped = Some(stop);
                        break 'restarts;
                    }
                }
            }
            out.steps += 1;
            let f = repair.violated[rng.below(repair.violated.len())] as usize;
            let facet = &inst.facets[f];
            // Move only a class that contributes to the facet's
            // violation: one whose current value overflows its window
            // here. Reassigning any other class cannot shrink the
            // overflow, and on all-different-style facets (every upper
            // window 1) most classes are innocent — uniform picks would
            // waste the bulk of the repair budget. A pure-deficit
            // violation has no overflowing class; any class can then
            // donate its multiplicity, so fall back to a uniform pick.
            // One-pass reservoir sampling keeps the choice uniform over
            // offenders and deterministic under the seeded RNG.
            let pick = {
                let mut offenders = 0usize;
                let mut chosen = 0usize;
                for (i, &(c, _)) in facet.iter().enumerate() {
                    let vi = repair.assign[c as usize];
                    if repair.counts[f * m + vi] > inst.upper[vi] {
                        offenders += 1;
                        if rng.below(offenders) == 0 {
                            chosen = i;
                        }
                    }
                }
                if offenders > 0 {
                    chosen
                } else {
                    rng.below(facet.len())
                }
            };
            let (c, _) = facet[pick];
            let c = c as usize;
            let vi = if rng.below(100) < cfg.walk_pct as usize {
                rng.below(m)
            } else {
                let rotate = rng.below(m);
                let mut best = repair.assign[c];
                let mut best_delta = i64::MAX;
                for probe in 0..m {
                    let cand = (probe + rotate) % m;
                    if cand == repair.assign[c] {
                        continue;
                    }
                    let d = repair.move_delta(c, cand);
                    if d < best_delta {
                        best_delta = d;
                        best = cand;
                    }
                }
                best
            };
            repair.apply_move(c, vi);
        }
    }
    if let Some(assignment) = &out.assignment {
        debug_assert!(assignment.iter().all(|&v| (1..=m).contains(&v)));
    }
    out
}

/// Race the cancellable CDCL lane against the local-search completion
/// engine: first finisher flips the shared cancel flag and wins. A
/// local win is packaged as `CdclResult::Sat` (same witness shape, same
/// downstream facet replay); a local exhaustion simply leaves CDCL to
/// finish. Both lanes poll the same governance ticket, so budgets and
/// deadlines cap the race as a whole.
pub(crate) fn solve_race_governed(
    inst: &Instance,
    cdcl_cfg: &CdclConfig,
    local_cfg: &LocalConfig,
    ticket: Option<&Ticket>,
) -> (CdclResult, SearchStats) {
    let warm: Option<Vec<u32>> = cdcl_cfg
        .warm_start
        .as_deref()
        .filter(|w| w.len() == inst.classes)
        .cloned();
    let cancel = AtomicBool::new(false);
    let local_out: std::sync::Mutex<Option<LocalOutcome>> = std::sync::Mutex::new(None);
    let (cdcl_result, mut stats) = std::thread::scope(|scope| {
        let local_lane = scope.spawn(|| {
            let out = solve_local(inst, local_cfg, warm.as_deref(), Some(&cancel), ticket);
            if out.assignment.is_some() {
                cancel.store(true, Ordering::Relaxed);
            }
            *local_out.lock().expect("local lane mutex") = Some(out);
        });
        let cdcl = solve_single_cancellable(inst, cdcl_cfg.clone(), &cancel, ticket);
        cancel.store(true, Ordering::Relaxed);
        local_lane.join().expect("local-search lane must not panic");
        cdcl
    });
    let local = local_out
        .into_inner()
        .expect("local lane mutex")
        .expect("local lane stores its outcome");
    stats.local_steps = local.steps;
    stats.local_restarts = local.restarts;
    match (&cdcl_result, local.assignment) {
        // CDCL finished with a verdict: it wins outright (an UNSAT
        // verdict is authoritative; a SAT one arrived first).
        (CdclResult::Sat(_) | CdclResult::Unsat, _) => (cdcl_result, stats),
        // CDCL was cancelled or interrupted and the local lane holds a
        // witness: the completion engine won the race.
        (CdclResult::Interrupted, Some(assignment)) => {
            stats.local_won = true;
            (CdclResult::Sat(assignment), stats)
        }
        // Both lanes came up empty (ticket trip or exhaustion).
        (CdclResult::Interrupted, None) => (CdclResult::Interrupted, stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 3-class instance: one facet per class pair, every value
    /// window `[0, 1]` over two values — a proper 2-coloring-style
    /// constraint that local search solves instantly.
    fn pair_instance() -> Instance {
        Instance {
            classes: 3,
            values: 2,
            lower: vec![0, 0],
            upper: vec![1, 1],
            facets: vec![
                vec![(0, 1), (1, 1)],
                vec![(0, 1), (2, 1)],
                vec![(1, 1), (2, 1)],
            ],
            class_weight: vec![2, 2, 2],
            value_symmetric: true,
            precedence_order: vec![0, 1, 2],
            class_perms: Vec::new(),
        }
    }

    #[test]
    fn local_finds_witness_on_satisfiable_instance() {
        // Drop one pair facet: the remaining path of pairs is
        // 2-colorable, so a witness exists.
        let mut inst = pair_instance();
        inst.facets.pop();
        let out = solve_local(&inst, &LocalConfig::default(), None, None, None);
        let assignment = out.assignment.expect("pair instance is satisfiable");
        assert_eq!(assignment.len(), 3);
        for facet in &inst.facets {
            let mut counts = [0u32; 2];
            for &(c, mult) in facet {
                counts[assignment[c as usize] - 1] += mult;
            }
            for ((&c, &l), &u) in counts.iter().zip(&inst.lower).zip(&inst.upper) {
                assert!(c >= l && c <= u);
            }
        }
    }

    #[test]
    fn local_is_deterministic() {
        let inst = pair_instance();
        let cfg = LocalConfig {
            restarts: 3,
            steps_per_restart: 512,
            ..LocalConfig::default()
        };
        let a = solve_local(&inst, &cfg, None, None, None);
        let b = solve_local(&inst, &cfg, None, None, None);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn warm_seed_pins_first_construction() {
        let inst = pair_instance();
        // The pair windows force distinct values on every pair — with
        // only two values over three mutually paired classes the
        // instance is UNSAT, so exhaustion must come back witness-free.
        // Use a satisfiable two-class variant instead to observe seeds.
        let inst2 = Instance {
            classes: 2,
            values: 2,
            facets: vec![vec![(0, 1), (1, 1)]],
            class_weight: vec![1, 1],
            precedence_order: vec![0, 1],
            ..inst
        };
        let cfg = LocalConfig::default();
        let out = solve_local(&inst2, &cfg, Some(&[2, 1]), None, None);
        assert_eq!(out.assignment, Some(vec![2, 1]));
        assert_eq!(out.steps, 0, "warm seed satisfies outright");
    }

    #[test]
    fn exhaustion_returns_no_witness() {
        // Three mutually paired classes, two values, windows [0,1]:
        // some pair must repeat a value, so no witness exists.
        let inst = pair_instance();
        let cfg = LocalConfig {
            restarts: 3,
            steps_per_restart: 64,
            ..LocalConfig::default()
        };
        let out = solve_local(&inst, &cfg, None, None, None);
        assert!(out.assignment.is_none());
        assert_eq!(out.restarts, 3);
        assert!(out.stopped.is_none());
    }

    #[test]
    fn race_returns_unsat_from_cdcl_lane() {
        let inst = pair_instance();
        let (result, stats) = solve_race_governed(
            &inst,
            &CdclConfig::default(),
            &LocalConfig {
                restarts: 2,
                steps_per_restart: 64,
                ..LocalConfig::default()
            },
            None,
        );
        assert!(matches!(result, CdclResult::Unsat));
        assert!(!stats.local_won);
    }

    #[test]
    fn cancel_flag_stops_local_search() {
        let inst = pair_instance();
        let cancel = AtomicBool::new(true);
        let cfg = LocalConfig {
            restarts: 1,
            steps_per_restart: 100_000_000,
            ..LocalConfig::default()
        };
        let out = solve_local(&inst, &cfg, None, Some(&cancel), None);
        assert!(out.assignment.is_none());
        assert!(
            out.steps < 100_000_000,
            "pre-set cancel flag cuts the run short"
        );
    }
}
