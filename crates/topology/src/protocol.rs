//! Iterated immediate-snapshot protocol complexes (standard chromatic
//! subdivisions).
//!
//! One round of immediate snapshot among processes `1..n` corresponds to
//! an *ordered partition* `(B_1, …, B_k)` of `{1..n}`: a process in block
//! `B_j` sees exactly `B_1 ∪ … ∪ B_j`. The complex whose facets are these
//! executions is the standard chromatic subdivision `χ(Δ^{n−1})`;
//! iterating `r` times gives `χ^r(Δ^{n−1})`, the protocol complex of the
//! `r`-round full-information IIS algorithm. A one-shot comparison-based
//! task is solvable by such an algorithm iff a *symmetric* simplicial
//! decision map exists on some `χ^r` (see
//! [`solvability`](crate::solvability)).
//!
//! **The streaming pipeline** (`χ³(Δ³)`'s 421,875 facets in ~1 s on one
//! core; see `DESIGN.md` §8):
//!
//! * Each ordered partition is precomputed once as a flat
//!   [`RoundTemplate`] — per-process "sees prefix" index maps — so
//!   applying a round to a facet is index arithmetic over a reused
//!   scratch buffer, with no per-process set cloning or re-sorting.
//! * The facet frontier is a flat CSR-style arena (one `Vec<ViewKey>`,
//!   `n` keys per row) fanned out in parallel chunks (rayon stand-in;
//!   single-chunk serial on one core), each chunk deduplicating its rows
//!   hash-based locally before a serial order-preserving merge — there
//!   is no global sort+dedup of the frontier.
//! * Chunk workers never touch the [`ViewArena`]: a new row references
//!   only previous-round keys, so workers intern candidate view nodes
//!   into chunk-local tables that the merge step replays into the shared
//!   arena in chunk order (deterministic whatever the thread count).
//! * Signature classes are tracked **incrementally per round** (arena
//!   signatures are memoized per key), so the finished complex carries
//!   its [`SignatureQuotient`] and
//!   [`ChromaticComplex::signature_quotient`] is a lookup, not a
//!   re-walk.
//!
//! The seed's tuple-cloning builder is retained as
//! [`protocol_complex_reference`] — the oracle the streaming pipeline is
//! equivalence-tested against (`tests/streaming_equivalence.rs`).
//! [`shared_protocol_complex`] memoizes the finished complex per
//! `(n, rounds)` behind a process-wide table, mirroring the atlas memo
//! pattern — repeated searches at the same parameters share one build.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rayon::prelude::*;

use crate::complex::{ChromaticComplex, SignatureQuotient, Vertex, VertexId};
#[cfg(debug_assertions)]
use crate::views::fx_mix;
use crate::views::{
    node_hash_pair, node_hash_seed, ordered_partitions, round_templates, ProbeTable, RoundTemplate,
    View, ViewArena, ViewKey,
};

/// Construction counters of one streaming subdivision build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildStats {
    /// Facets of the finished complex.
    pub facets: usize,
    /// Distinct vertices of the finished complex.
    pub vertices: usize,
    /// View order-isomorphism classes of the finished complex.
    pub classes: usize,
    /// Largest deduplicated frontier (in facet rows) held at any round —
    /// the builder's peak working-set measure.
    pub peak_frontier_rows: usize,
    /// Parallel chunks the widest round was fanned out over.
    pub chunks: usize,
}

/// Hash of one facet row (a tuple of `n` view keys).
#[cfg(debug_assertions)]
fn row_hash(row: &[ViewKey]) -> u64 {
    let mut hash = row.len() as u64;
    for &key in row {
        hash = fx_mix(hash, key.index() as u64);
    }
    hash
}

/// Debug-build invariant check behind the pipeline's no-dedup design:
/// template stamping is **injective** — a produced row reveals its
/// parent row (every process's new view contains that process's
/// previous view) and its schedule (the seen-sets of one row are
/// exactly the prefix unions of the ordered partition, which they
/// determine) — so distinct `(parent row, template)` pairs can never
/// produce equal rows and the frontier needs no deduplication at all.
/// This replaces the seed's global `sort` + `dedup` of the whole
/// frontier with an `O(rows)` hash-set sweep that release builds skip.
#[cfg(debug_assertions)]
fn assert_rows_distinct(buf: &[ViewKey], n: usize) {
    let mut starts = ProbeTable::with_capacity(buf.len() / n);
    for start in (0..buf.len()).step_by(n) {
        let row = &buf[start..start + n];
        let hash = row_hash(row);
        assert!(
            starts
                .find(hash, |other| buf[other as usize..][..n] == *row)
                .is_none(),
            "template stamping must be injective (duplicate frontier row)"
        );
        starts.insert(hash, u32::try_from(start).expect("frontier fits in u32"));
    }
}

/// One chunk worker's output: rows over chunk-local node indices, plus
/// the table of distinct candidate view nodes (whose seen-lists
/// reference previous-round *global* keys — workers never touch the
/// shared arena).
#[derive(Debug, Default)]
struct ChunkRows {
    /// Flat rows of chunk-local node indices (`n` per row).
    rows: Vec<ViewKey>,
    /// Observer identity of each local node.
    node_ids: Vec<u32>,
    /// Concatenated seen-lists of the local nodes (global prev keys).
    node_seen: Vec<(u32, ViewKey)>,
    /// Row boundaries into `node_seen`; length `nodes + 1`.
    node_offsets: Vec<u32>,
}

/// Fills `scratch` with process `p`'s one-round seen list under
/// `template` applied to `row` — pure index arithmetic over the
/// template's prefix map, already identity-sorted — folding the node
/// content hash along the way. Returns `(observer id, seen length,
/// content hash)`; the single shared stamping step of the serial and
/// chunked paths.
#[inline]
fn stamp_process(
    row: &[ViewKey],
    template: &RoundTemplate,
    p: usize,
    scratch: &mut [(u32, ViewKey)],
) -> (u32, usize, u64) {
    let seen_of = template.seen_of(p);
    let id = p as u32 + 1;
    let mut hash = node_hash_seed(id, seen_of.len());
    for (slot, &q) in seen_of.iter().enumerate() {
        let pair = (q + 1, row[q as usize]);
        hash = node_hash_pair(hash, pair);
        scratch[slot] = pair;
    }
    (id, seen_of.len(), hash)
}

/// Stamps every template onto every facet row of `chunk`, interning the
/// produced views into a chunk-local node table.
fn stamp_chunk(chunk: &[ViewKey], n: usize, templates: &[RoundTemplate]) -> ChunkRows {
    let mut out = ChunkRows {
        rows: Vec::with_capacity(chunk.len() * templates.len()),
        node_offsets: vec![0],
        ..ChunkRows::default()
    };
    // Local hash-consing: content hash → local node indices.
    let mut node_index = ProbeTable::with_capacity(chunk.len());
    let mut scratch: Vec<(u32, ViewKey)> = vec![(0, ViewKey::from_index(0)); n];
    for row in chunk.chunks_exact(n) {
        for template in templates {
            for p in 0..n {
                let (id, len, hash) = stamp_process(row, template, p, &mut scratch);
                let local = intern_local(&mut out, &mut node_index, id, &scratch[..len], hash);
                out.rows.push(ViewKey::from_index(local as usize));
            }
        }
    }
    out
}

/// Interns `(id, seen)` into the chunk-local node table, returning its
/// local index.
fn intern_local(
    out: &mut ChunkRows,
    node_index: &mut ProbeTable,
    id: u32,
    seen: &[(u32, ViewKey)],
    hash: u64,
) -> u32 {
    if let Some(local) = node_index.find(hash, |local| {
        let (from, to) = (
            out.node_offsets[local as usize] as usize,
            out.node_offsets[local as usize + 1] as usize,
        );
        out.node_ids[local as usize] == id && out.node_seen[from..to] == *seen
    }) {
        return local;
    }
    let local = u32::try_from(out.node_ids.len()).expect("chunk nodes fit in u32");
    out.node_ids.push(id);
    out.node_seen.extend_from_slice(seen);
    out.node_offsets
        .push(u32::try_from(out.node_seen.len()).expect("chunk nodes fit in u32"));
    node_index.insert(hash, local);
    local
}

/// Applies one subdivision round to the whole frontier. Multi-worker
/// hosts fan the frontier out in parallel chunks whose local node
/// tables a serial merge replays into the shared arena in chunk order;
/// a single worker stamps straight into the arena with no local
/// indirection. Injectivity of stamping (see [`assert_rows_distinct`])
/// means the produced rows are distinct by construction — chunks are
/// contiguous frontier ranges, so the merged row order equals the
/// serial stamping order whatever the worker count.
fn advance_round(
    frontier: &[ViewKey],
    n: usize,
    templates: &[RoundTemplate],
    arena: &mut ViewArena,
    stats: &mut BuildStats,
    workers: usize,
) -> Vec<ViewKey> {
    let rows = frontier.len() / n;
    // One chunk per worker; below a few rows per worker the fan-out
    // overhead outweighs the stamping itself.
    let chunks = if rows >= 2 * workers { workers } else { 1 };
    stats.chunks = stats.chunks.max(chunks);
    let next = if chunks == 1 {
        let mut next: Vec<ViewKey> = Vec::with_capacity(rows * templates.len() * n);
        // Fixed-width scratch row: indexed writes, no per-push growth
        // checks (a template row never exceeds n entries).
        let mut scratch: Vec<(u32, ViewKey)> = vec![(0, ViewKey::from_index(0)); n];
        for row in frontier.chunks_exact(n) {
            for template in templates {
                for p in 0..n {
                    let (id, len, hash) = stamp_process(row, template, p, &mut scratch);
                    next.push(arena.round_prehashed(id, &scratch[..len], hash));
                }
            }
        }
        next
    } else {
        let rows_per_chunk = rows.div_ceil(chunks);
        let chunk_outputs: Vec<ChunkRows> = frontier
            .chunks(rows_per_chunk * n)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|chunk| stamp_chunk(chunk, n, templates))
            .collect();
        let mut next: Vec<ViewKey> =
            Vec::with_capacity(chunk_outputs.iter().map(|c| c.rows.len()).sum());
        for chunk in chunk_outputs {
            let global: Vec<ViewKey> = (0..chunk.node_ids.len())
                .map(|local| {
                    let (from, to) = (
                        chunk.node_offsets[local] as usize,
                        chunk.node_offsets[local + 1] as usize,
                    );
                    arena.round_from_slice(chunk.node_ids[local], &chunk.node_seen[from..to])
                })
                .collect();
            next.extend(chunk.rows.iter().map(|&local| global[local.index()]));
        }
        next
    };
    #[cfg(debug_assertions)]
    assert_rows_distinct(&next, n);
    stats.peak_frontier_rows = stats.peak_frontier_rows.max(next.len() / n);
    next
}

/// Builds the `r`-round IIS protocol complex `χ^r(Δ^{n−1})` for processes
/// with identities `1..n`, returning the construction counters alongside
/// the complex. See [`protocol_complex`].
///
/// # Panics
///
/// Panics if `n = 0`.
#[must_use]
pub fn protocol_complex_with_stats(n: usize, rounds: usize) -> (ChromaticComplex, BuildStats) {
    protocol_complex_with_workers(n, rounds, rayon::current_num_threads().max(1))
}

/// [`protocol_complex_with_stats`] with an explicit chunk-fan-out width
/// (normally `rayon::current_num_threads()`) — kept injectable so the
/// test suite exercises the multi-chunk stamping/merge path even on the
/// 1-core containers CI runs on.
fn protocol_complex_with_workers(
    n: usize,
    rounds: usize,
    workers: usize,
) -> (ChromaticComplex, BuildStats) {
    assert!(n > 0, "need at least one process");
    let templates = round_templates(n);
    let mut arena = ViewArena::new();
    let mut stats = BuildStats::default();
    // Facet frontier: flat CSR rows of per-process view keys.
    let mut frontier: Vec<ViewKey> = (1..=n as u32).map(|id| arena.initial(id)).collect();
    stats.peak_frontier_rows = 1;
    for _ in 0..rounds {
        let keys_before = arena.len();
        frontier = advance_round(&frontier, n, &templates, &mut arena, &mut stats, workers);
        // Incremental class tracking: canonical signatures of this
        // round's new views are computed (and memoized) now, so the
        // final quotient assembly below is pure lookup.
        for index in keys_before..arena.len() {
            arena.signature(ViewKey::from_index(index));
        }
    }
    // Materialize: one vertex per distinct (color, key), classes in
    // vertex first-appearance order — exactly the order
    // `compute_quotient` would produce, so the attached quotient is
    // indistinguishable from a recomputation.
    let mut complex = ChromaticComplex::new(n);
    complex.reserve(arena.len(), frontier.len() / n);
    // Dense key → vertex map (keys are arena indices); u32::MAX = unseen.
    let mut vertex_of: Vec<VertexId> = vec![VertexId::MAX; arena.len()];
    // Dense signature-key → class map (signature keys are arena indices).
    let mut class_of_signature: Vec<u32> = vec![u32::MAX; arena.len()];
    let mut classes: Vec<View> = Vec::new();
    let mut vertex_class: Vec<u32> = Vec::new();
    let mut facet: Vec<VertexId> = Vec::with_capacity(n);
    for row in frontier.chunks_exact(n) {
        facet.clear();
        for (color, &key) in (1..=n as u32).zip(row) {
            let mut vertex = vertex_of[key.index()];
            if vertex == VertexId::MAX {
                // Hash-consing guarantees a fresh key is a fresh vertex.
                vertex = complex.push_vertex(Vertex {
                    color,
                    view: arena.view(key),
                });
                let signature = arena.signature(key);
                vertex_of[key.index()] = vertex;
                let mut class = class_of_signature[signature.index()];
                if class == u32::MAX {
                    class = u32::try_from(classes.len()).expect("classes fit in u32");
                    classes.push(arena.view(signature));
                    class_of_signature[signature.index()] = class;
                }
                vertex_class.push(class);
            }
            facet.push(vertex);
        }
        facet.sort_unstable();
        complex.push_facet_sorted(&facet);
    }
    stats.facets = complex.facet_count();
    stats.vertices = complex.vertices().len();
    stats.classes = classes.len();
    complex.set_quotient(SignatureQuotient {
        classes,
        vertex_class,
    });
    (complex, stats)
}

/// Builds the `r`-round IIS protocol complex `χ^r(Δ^{n−1})` for processes
/// with identities `1..n` through the streaming template-stamping
/// pipeline (see the module docs). The finished complex carries its
/// signature quotient, so
/// [`signature_quotient`](ChromaticComplex::signature_quotient) on it is
/// a lookup.
///
/// Facet counts grow as (ordered Bell number of `n`)^`r`; the streaming
/// builder keeps `n ≤ 4, r ≤ 3` and `n = 5, r ≤ 2` interactive (χ³(Δ³)'s
/// 421,875 facets build in about a second on one core — `BENCH_construct.json`
/// has the record).
///
/// # Panics
///
/// Panics if `n = 0`.
///
/// # Examples
///
/// ```
/// use gsb_topology::protocol_complex;
///
/// let one_round = protocol_complex(3, 1);
/// assert_eq!(one_round.facet_count(), 13); // ordered partitions of 3
/// ```
#[must_use]
pub fn protocol_complex(n: usize, rounds: usize) -> ChromaticComplex {
    protocol_complex_with_stats(n, rounds).0
}

/// The seed's tuple-cloning subdivision builder, retained verbatim as
/// the reference oracle for the streaming pipeline
/// (`tests/streaming_equivalence.rs` asserts facet-level equality after
/// canonical ordering) and as the baseline of the construction bench.
///
/// # Panics
///
/// Panics if `n = 0`.
#[must_use]
pub fn protocol_complex_reference(n: usize, rounds: usize) -> ChromaticComplex {
    assert!(n > 0, "need at least one process");
    let ids: Vec<u32> = (1..=n as u32).collect();
    let partitions = ordered_partitions(&ids);
    let mut arena = ViewArena::new();
    // Facet frontier: per-execution view tuples, one key per process.
    let initial: Vec<ViewKey> = ids.iter().map(|&id| arena.initial(id)).collect();
    let mut frontier: Vec<Vec<ViewKey>> = vec![initial];
    for _ in 0..rounds {
        let mut next: Vec<Vec<ViewKey>> = Vec::with_capacity(frontier.len() * partitions.len());
        for views in &frontier {
            for partition in &partitions {
                // Apply one IS round: a process in block j sees blocks 1..=j.
                let mut next_views = views.clone();
                let mut seen_so_far: Vec<(u32, ViewKey)> = Vec::new();
                for block in partition {
                    for &q in block {
                        let qi = (q - 1) as usize;
                        seen_so_far.push((q, views[qi]));
                    }
                    for &p in block {
                        let pi = (p - 1) as usize;
                        next_views[pi] = arena.round(p, seen_so_far.clone());
                    }
                }
                next.push(next_views);
            }
        }
        // Distinct schedules can merge into one view tuple; dedup early so
        // the next round's fan-out works on distinct executions only.
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    // Materialize: one recursive View per distinct (color, key) vertex.
    let mut complex = ChromaticComplex::new(n);
    let mut vertex_of: HashMap<ViewKey, VertexId> = HashMap::new();
    for views in &frontier {
        let facet: Vec<_> = ids
            .iter()
            .zip(views)
            .map(|(&id, &key)| match vertex_of.get(&key) {
                Some(&v) => v,
                None => {
                    let v = complex.intern(Vertex {
                        color: id,
                        view: arena.view(key),
                    });
                    vertex_of.insert(key, v);
                    v
                }
            })
            .collect();
        complex.add_facet(facet);
    }
    complex.dedup_facets();
    complex
}

/// The process-wide memoized `χ^r(Δ^{n−1})`: built once per `(n, rounds)`
/// and shared behind an [`Arc`] — searches, certificates, and benches at
/// the same parameters reuse one complex (and its attached signature
/// quotient) instead of re-running the subdivision fan-out.
#[must_use]
pub fn shared_protocol_complex(n: usize, rounds: usize) -> Arc<ChromaticComplex> {
    type Cache = Mutex<HashMap<(usize, usize), Arc<ChromaticComplex>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(hit) = cache
        .lock()
        .expect("subdivision cache poisoned")
        .get(&(n, rounds))
    {
        return Arc::clone(hit);
    }
    // Build outside the lock: subdivisions can take milliseconds and other
    // threads may want different parameters meanwhile. A racing builder at
    // the same key just loses its copy.
    let built = Arc::new(protocol_complex(n, rounds));
    Arc::clone(
        cache
            .lock()
            .expect("subdivision cache poisoned")
            .entry((n, rounds))
            .or_insert(built),
    )
}

/// Facet counts of `χ^r(Δ^{n−1})` known in closed form for one round: the
/// ordered Bell numbers. Exposed for tests and benches.
#[must_use]
pub fn ordered_bell(n: usize) -> usize {
    // a(n) = Σ_{k=1..n} C(n,k)·a(n−k), a(0) = 1.
    let mut a = vec![0usize; n + 1];
    a[0] = 1;
    for i in 1..=n {
        let mut total = 0usize;
        let mut binom = 1usize; // C(i, k)
        for k in 1..=i {
            binom = binom * (i - k + 1) / k;
            total += binom * a[i - k];
        }
        a[i] = total;
    }
    a[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::View;

    #[test]
    fn ordered_bell_numbers() {
        assert_eq!(ordered_bell(0), 1);
        assert_eq!(ordered_bell(1), 1);
        assert_eq!(ordered_bell(2), 3);
        assert_eq!(ordered_bell(3), 13);
        assert_eq!(ordered_bell(4), 75);
        assert_eq!(ordered_bell(5), 541);
    }

    #[test]
    fn one_round_facet_counts_match_ordered_bell() {
        for n in 1..=4 {
            let complex = protocol_complex(n, 1);
            assert_eq!(complex.facet_count(), ordered_bell(n), "n = {n}");
        }
    }

    #[test]
    fn two_round_facet_count_n2() {
        // χ²(Δ¹): the edge subdivided twice: 3² = 9 facets.
        let complex = protocol_complex(2, 2);
        assert_eq!(complex.facet_count(), 9);
    }

    #[test]
    fn zero_rounds_is_a_single_simplex() {
        let complex = protocol_complex(3, 0);
        assert_eq!(complex.facet_count(), 1);
        assert_eq!(complex.vertices().len(), 3);
    }

    #[test]
    fn subdivisions_are_pseudomanifolds() {
        for (n, r) in [(2usize, 1usize), (2, 2), (2, 3), (3, 1), (3, 2), (4, 1)] {
            let complex = protocol_complex(n, r);
            assert!(complex.is_pseudomanifold(), "χ^{r}(Δ^{}) n={n}", n - 1);
            assert!(complex.is_strongly_connected(), "χ^{r} n={n}");
        }
    }

    #[test]
    fn boundary_of_subdivided_edge() {
        // χ(Δ¹) is a path: exactly 2 boundary vertices (the corners).
        let complex = protocol_complex(2, 1);
        assert_eq!(complex.boundary_ridge_count(), 2);
        // χ(Δ²)'s boundary is the subdivided triangle boundary: each of
        // the 3 edges of Δ² is subdivided into a path of 3 edges → 9
        // boundary ridges.
        let complex = protocol_complex(3, 1);
        assert_eq!(complex.boundary_ridge_count(), 9);
    }

    #[test]
    fn vertex_views_have_expected_depth() {
        let complex = protocol_complex(3, 2);
        for v in complex.vertices() {
            assert_eq!(v.view.depth(), 2);
            assert_eq!(v.view.id(), v.color);
        }
    }

    #[test]
    fn solo_corner_exists_per_color() {
        // In χ(Δ²) each color has a corner vertex seeing only itself.
        let complex = protocol_complex(3, 1);
        for color in 1..=3u32 {
            let solo = View::one_round(color, &[color]);
            assert!(
                complex
                    .vertices()
                    .iter()
                    .any(|v| v.color == color && v.view == solo),
                "missing solo corner for color {color}"
            );
        }
    }

    #[test]
    fn shared_complex_is_memoized_and_identical() {
        let a = shared_protocol_complex(3, 1);
        let b = shared_protocol_complex(3, 1);
        assert!(Arc::ptr_eq(&a, &b), "same (n, r) must share one build");
        let fresh = protocol_complex(3, 1);
        assert_eq!(a.facet_count(), fresh.facet_count());
        assert_eq!(a.vertices().len(), fresh.vertices().len());
    }

    #[test]
    fn build_stats_reflect_the_construction() {
        let (complex, stats) = protocol_complex_with_stats(3, 2);
        assert_eq!(stats.facets, complex.facet_count());
        assert_eq!(stats.vertices, complex.vertices().len());
        assert_eq!(stats.classes, complex.signature_quotient().classes.len());
        // The final frontier is the facet set, and it is the largest.
        assert_eq!(stats.peak_frontier_rows, complex.facet_count());
        assert!(stats.chunks >= 1);
    }

    #[test]
    fn chunked_fanout_is_identical_to_serial_stamping() {
        // The multi-chunk path (chunk-local node tables + serial merge)
        // is unreachable through the public API on a 1-core host, so
        // force it: chunks are contiguous frontier ranges replayed in
        // order, hence the build must be bit-identical to the serial
        // one — same facet rows, same vertex numbering, same classes.
        for workers in [2usize, 3, 5] {
            let (serial, serial_stats) = protocol_complex_with_workers(3, 2, 1);
            let (chunked, chunked_stats) = protocol_complex_with_workers(3, 2, workers);
            assert!(chunked_stats.chunks > 1, "fan-out engaged ({workers})");
            assert_eq!(serial_stats.facets, chunked_stats.facets);
            assert_eq!(serial.facet_data(), chunked.facet_data());
            assert_eq!(serial.vertices(), chunked.vertices());
            let sq = serial.signature_quotient();
            let cq = chunked.signature_quotient();
            assert_eq!(sq.classes, cq.classes);
            assert_eq!(sq.vertex_class, cq.vertex_class);
        }
        // A width wider than the frontier rows degrades to one chunk.
        let (wide, wide_stats) = protocol_complex_with_workers(2, 1, 64);
        assert_eq!(wide_stats.chunks, 1);
        assert_eq!(wide.facet_count(), 3);
    }

    #[test]
    fn streamed_quotient_matches_recomputation() {
        // The builder-attached quotient must be indistinguishable from
        // what the complex would compute from scratch: same classes in
        // the same order, same per-vertex class ids.
        let streamed = protocol_complex(3, 2);
        let attached = streamed.signature_quotient();
        let mut scratch = ChromaticComplex::new(3);
        for facet in streamed.facets() {
            let vertices: Vec<VertexId> = facet
                .iter()
                .map(|&v| scratch.intern(streamed.vertices()[v as usize].clone()))
                .collect();
            scratch.add_facet(vertices);
        }
        let recomputed = scratch.signature_quotient();
        assert_eq!(attached.classes, recomputed.classes);
        assert_eq!(attached.vertex_class, recomputed.vertex_class);
    }
}
