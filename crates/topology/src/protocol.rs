//! Iterated immediate-snapshot protocol complexes (standard chromatic
//! subdivisions).
//!
//! One round of immediate snapshot among processes `1..n` corresponds to
//! an *ordered partition* `(B_1, …, B_k)` of `{1..n}`: a process in block
//! `B_j` sees exactly `B_1 ∪ … ∪ B_j`. The complex whose facets are these
//! executions is the standard chromatic subdivision `χ(Δ^{n−1})`;
//! iterating `r` times gives `χ^r(Δ^{n−1})`, the protocol complex of the
//! `r`-round full-information IIS algorithm. A one-shot comparison-based
//! task is solvable by such an algorithm iff a *symmetric* simplicial
//! decision map exists on some `χ^r` (see
//! [`solvability`](crate::solvability)).
//!
//! **The streaming pipeline** (`χ³(Δ³)`'s 421,875 facets in ~1 s on one
//! core; see `DESIGN.md` §8):
//!
//! * Each ordered partition is precomputed once as a flat
//!   [`RoundTemplate`] — per-process "sees prefix" index maps — so
//!   applying a round to a facet is index arithmetic over a reused
//!   scratch buffer, with no per-process set cloning or re-sorting.
//! * The facet frontier is a flat CSR-style arena (one `Vec<ViewKey>`,
//!   `n` keys per row) fanned out in parallel chunks (rayon stand-in;
//!   single-chunk serial on one core), each chunk deduplicating its rows
//!   hash-based locally before a serial order-preserving merge — there
//!   is no global sort+dedup of the frontier.
//! * Chunk workers never touch the [`ViewArena`]: a new row references
//!   only previous-round keys, so workers intern candidate view nodes
//!   into chunk-local tables that the merge step replays into the shared
//!   arena in chunk order (deterministic whatever the thread count).
//! * Signature classes are tracked **incrementally per round** (arena
//!   signatures are memoized per key), so the finished complex carries
//!   its [`SignatureQuotient`] and
//!   [`ChromaticComplex::signature_quotient`] is a lookup, not a
//!   re-walk.
//!
//! The seed's tuple-cloning builder is retained as
//! [`protocol_complex_reference`] — the oracle the streaming pipeline is
//! equivalence-tested against (`tests/streaming_equivalence.rs`).
//! [`shared_protocol_complex`] memoizes the finished complex per
//! `(n, rounds)` behind a process-wide table, mirroring the atlas memo
//! pattern — repeated searches at the same parameters share one build.

use gsb_core::govern::{Stopped, Ticket};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rayon::prelude::*;

use crate::complex::{ChromaticComplex, SignatureQuotient, Vertex, VertexId};
use crate::views::{
    fx_mix, node_hash_pair, node_hash_seed, ordered_partitions, round_templates, ProbeTable,
    RoundTemplate, View, ViewArena, ViewKey,
};

/// Construction counters of one streaming subdivision build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildStats {
    /// Facets of the finished complex.
    pub facets: usize,
    /// Distinct vertices of the finished complex.
    pub vertices: usize,
    /// View order-isomorphism classes of the finished complex.
    pub classes: usize,
    /// Largest deduplicated frontier (in facet rows) held at any round —
    /// the builder's peak working-set measure.
    pub peak_frontier_rows: usize,
    /// Parallel chunks the widest round was fanned out over.
    pub chunks: usize,
}

/// Hash of one facet row (a tuple of `n` view keys) — the debug-build
/// injectivity sweep and the orbit pipeline's canonical-row dedup both
/// key their probe tables on it.
fn row_hash(row: &[ViewKey]) -> u64 {
    let mut hash = row.len() as u64;
    for &key in row {
        hash = fx_mix(hash, key.index() as u64);
    }
    hash
}

/// Debug-build invariant check behind the pipeline's no-dedup design:
/// template stamping is **injective** — a produced row reveals its
/// parent row (every process's new view contains that process's
/// previous view) and its schedule (the seen-sets of one row are
/// exactly the prefix unions of the ordered partition, which they
/// determine) — so distinct `(parent row, template)` pairs can never
/// produce equal rows and the frontier needs no deduplication at all.
/// This replaces the seed's global `sort` + `dedup` of the whole
/// frontier with an `O(rows)` hash-set sweep that release builds skip.
#[cfg(debug_assertions)]
fn assert_rows_distinct(buf: &[ViewKey], n: usize) {
    let mut starts = ProbeTable::with_capacity(buf.len() / n);
    for start in (0..buf.len()).step_by(n) {
        let row = &buf[start..start + n];
        let hash = row_hash(row);
        assert!(
            starts
                .find(hash, |other| buf[other as usize..][..n] == *row)
                .is_none(),
            "template stamping must be injective (duplicate frontier row)"
        );
        starts.insert(hash, u32::try_from(start).expect("frontier fits in u32"));
    }
}

/// One chunk worker's output: rows over chunk-local node indices, plus
/// the table of distinct candidate view nodes (whose seen-lists
/// reference previous-round *global* keys — workers never touch the
/// shared arena).
#[derive(Debug, Default)]
struct ChunkRows {
    /// Flat rows of chunk-local node indices (`n` per row).
    rows: Vec<ViewKey>,
    /// Observer identity of each local node.
    node_ids: Vec<u32>,
    /// Concatenated seen-lists of the local nodes (global prev keys).
    node_seen: Vec<(u32, ViewKey)>,
    /// Row boundaries into `node_seen`; length `nodes + 1`.
    node_offsets: Vec<u32>,
}

/// Fills `scratch` with process `p`'s one-round seen list under
/// `template` applied to `row` — pure index arithmetic over the
/// template's prefix map, already identity-sorted — folding the node
/// content hash along the way. Returns `(observer id, seen length,
/// content hash)`; the single shared stamping step of the serial and
/// chunked paths.
#[inline]
fn stamp_process(
    row: &[ViewKey],
    template: &RoundTemplate,
    p: usize,
    scratch: &mut [(u32, ViewKey)],
) -> (u32, usize, u64) {
    let seen_of = template.seen_of(p);
    let id = p as u32 + 1;
    let mut hash = node_hash_seed(id, seen_of.len());
    for (slot, &q) in seen_of.iter().enumerate() {
        let pair = (q + 1, row[q as usize]);
        hash = node_hash_pair(hash, pair);
        scratch[slot] = pair;
    }
    (id, seen_of.len(), hash)
}

/// Stamps every template onto every facet row of `chunk`, interning the
/// produced views into a chunk-local node table.
fn stamp_chunk(chunk: &[ViewKey], n: usize, templates: &[RoundTemplate]) -> ChunkRows {
    let mut out = ChunkRows {
        rows: Vec::with_capacity(chunk.len() * templates.len()),
        node_offsets: vec![0],
        ..ChunkRows::default()
    };
    // Local hash-consing: content hash → local node indices.
    let mut node_index = ProbeTable::with_capacity(chunk.len());
    let mut scratch: Vec<(u32, ViewKey)> = vec![(0, ViewKey::from_index(0)); n];
    for row in chunk.chunks_exact(n) {
        for template in templates {
            for p in 0..n {
                let (id, len, hash) = stamp_process(row, template, p, &mut scratch);
                let local = intern_local(&mut out, &mut node_index, id, &scratch[..len], hash);
                out.rows.push(ViewKey::from_index(local as usize));
            }
        }
    }
    out
}

/// Interns `(id, seen)` into the chunk-local node table, returning its
/// local index.
fn intern_local(
    out: &mut ChunkRows,
    node_index: &mut ProbeTable,
    id: u32,
    seen: &[(u32, ViewKey)],
    hash: u64,
) -> u32 {
    if let Some(local) = node_index.find(hash, |local| {
        let (from, to) = (
            out.node_offsets[local as usize] as usize,
            out.node_offsets[local as usize + 1] as usize,
        );
        out.node_ids[local as usize] == id && out.node_seen[from..to] == *seen
    }) {
        return local;
    }
    let local = u32::try_from(out.node_ids.len()).expect("chunk nodes fit in u32");
    out.node_ids.push(id);
    out.node_seen.extend_from_slice(seen);
    out.node_offsets
        .push(u32::try_from(out.node_seen.len()).expect("chunk nodes fit in u32"));
    node_index.insert(hash, local);
    local
}

/// Applies one subdivision round to the whole frontier. Multi-worker
/// hosts fan the frontier out in parallel chunks whose local node
/// tables a serial merge replays into the shared arena in chunk order;
/// a single worker stamps straight into the arena with no local
/// indirection. Injectivity of stamping (see [`assert_rows_distinct`])
/// means the produced rows are distinct by construction — chunks are
/// contiguous frontier ranges, so the merged row order equals the
/// serial stamping order whatever the worker count.
fn advance_round(
    frontier: &[ViewKey],
    n: usize,
    templates: &[RoundTemplate],
    arena: &mut ViewArena,
    stats: &mut BuildStats,
    workers: usize,
) -> Vec<ViewKey> {
    let rows = frontier.len() / n;
    // One chunk per worker; below a few rows per worker the fan-out
    // overhead outweighs the stamping itself.
    let chunks = if rows >= 2 * workers { workers } else { 1 };
    stats.chunks = stats.chunks.max(chunks);
    let next = if chunks == 1 {
        let mut next: Vec<ViewKey> = Vec::with_capacity(rows * templates.len() * n);
        // Fixed-width scratch row: indexed writes, no per-push growth
        // checks (a template row never exceeds n entries).
        let mut scratch: Vec<(u32, ViewKey)> = vec![(0, ViewKey::from_index(0)); n];
        for row in frontier.chunks_exact(n) {
            for template in templates {
                for p in 0..n {
                    let (id, len, hash) = stamp_process(row, template, p, &mut scratch);
                    next.push(arena.round_prehashed(id, &scratch[..len], hash));
                }
            }
        }
        next
    } else {
        let rows_per_chunk = rows.div_ceil(chunks);
        let chunk_outputs: Vec<ChunkRows> = frontier
            .chunks(rows_per_chunk * n)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|chunk| stamp_chunk(chunk, n, templates))
            .collect();
        let mut next: Vec<ViewKey> =
            Vec::with_capacity(chunk_outputs.iter().map(|c| c.rows.len()).sum());
        for chunk in chunk_outputs {
            let global: Vec<ViewKey> = (0..chunk.node_ids.len())
                .map(|local| {
                    let (from, to) = (
                        chunk.node_offsets[local] as usize,
                        chunk.node_offsets[local + 1] as usize,
                    );
                    arena.round_from_slice(chunk.node_ids[local], &chunk.node_seen[from..to])
                })
                .collect();
            next.extend(chunk.rows.iter().map(|&local| global[local.index()]));
        }
        next
    };
    #[cfg(debug_assertions)]
    assert_rows_distinct(&next, n);
    stats.peak_frontier_rows = stats.peak_frontier_rows.max(next.len() / n);
    next
}

/// Builds the `r`-round IIS protocol complex `χ^r(Δ^{n−1})` for processes
/// with identities `1..n`, returning the construction counters alongside
/// the complex. See [`protocol_complex`].
///
/// # Panics
///
/// Panics if `n = 0`.
#[must_use]
pub fn protocol_complex_with_stats(n: usize, rounds: usize) -> (ChromaticComplex, BuildStats) {
    protocol_complex_with_workers(n, rounds, rayon::current_num_threads().max(1))
}

/// [`protocol_complex_with_stats`] with an explicit chunk-fan-out width
/// (normally `rayon::current_num_threads()`) — kept injectable so the
/// test suite exercises the multi-chunk stamping/merge path even on the
/// 1-core containers CI runs on.
fn protocol_complex_with_workers(
    n: usize,
    rounds: usize,
    workers: usize,
) -> (ChromaticComplex, BuildStats) {
    assert!(n > 0, "need at least one process");
    let templates = round_templates(n);
    let mut arena = ViewArena::new();
    let mut stats = BuildStats::default();
    // Facet frontier: flat CSR rows of per-process view keys.
    let mut frontier: Vec<ViewKey> = (1..=n as u32).map(|id| arena.initial(id)).collect();
    stats.peak_frontier_rows = 1;
    for _ in 0..rounds {
        let keys_before = arena.len();
        frontier = advance_round(&frontier, n, &templates, &mut arena, &mut stats, workers);
        // Incremental class tracking: canonical signatures of this
        // round's new views are computed (and memoized) now, so the
        // final quotient assembly below is pure lookup.
        for index in keys_before..arena.len() {
            arena.signature(ViewKey::from_index(index));
        }
    }
    // Materialize: one vertex per distinct (color, key), classes in
    // vertex first-appearance order — exactly the order
    // `compute_quotient` would produce, so the attached quotient is
    // indistinguishable from a recomputation.
    let mut complex = ChromaticComplex::new(n);
    complex.reserve(arena.len(), frontier.len() / n);
    // Dense key → vertex map (keys are arena indices); u32::MAX = unseen.
    let mut vertex_of: Vec<VertexId> = vec![VertexId::MAX; arena.len()];
    // Dense signature-key → class map (signature keys are arena indices).
    let mut class_of_signature: Vec<u32> = vec![u32::MAX; arena.len()];
    let mut classes: Vec<View> = Vec::new();
    let mut vertex_class: Vec<u32> = Vec::new();
    let mut facet: Vec<VertexId> = Vec::with_capacity(n);
    for row in frontier.chunks_exact(n) {
        facet.clear();
        for (color, &key) in (1..=n as u32).zip(row) {
            let mut vertex = vertex_of[key.index()];
            if vertex == VertexId::MAX {
                // Hash-consing guarantees a fresh key is a fresh vertex.
                vertex = complex.push_vertex(Vertex {
                    color,
                    view: arena.view(key),
                });
                let signature = arena.signature(key);
                vertex_of[key.index()] = vertex;
                let mut class = class_of_signature[signature.index()];
                if class == u32::MAX {
                    class = u32::try_from(classes.len()).expect("classes fit in u32");
                    classes.push(arena.view(signature));
                    class_of_signature[signature.index()] = class;
                }
                vertex_class.push(class);
            }
            facet.push(vertex);
        }
        facet.sort_unstable();
        complex.push_facet_sorted(&facet);
    }
    stats.facets = complex.facet_count();
    stats.vertices = complex.vertices().len();
    stats.classes = classes.len();
    complex.set_quotient(SignatureQuotient {
        classes,
        vertex_class,
    });
    (complex, stats)
}

/// Builds the `r`-round IIS protocol complex `χ^r(Δ^{n−1})` for processes
/// with identities `1..n` through the streaming template-stamping
/// pipeline (see the module docs). The finished complex carries its
/// signature quotient, so
/// [`signature_quotient`](ChromaticComplex::signature_quotient) on it is
/// a lookup.
///
/// Facet counts grow as (ordered Bell number of `n`)^`r`; the streaming
/// builder keeps `n ≤ 4, r ≤ 3` and `n = 5, r ≤ 2` interactive (χ³(Δ³)'s
/// 421,875 facets build in about a second on one core — `BENCH_construct.json`
/// has the record).
///
/// # Panics
///
/// Panics if `n = 0`.
///
/// # Examples
///
/// ```
/// use gsb_topology::protocol_complex;
///
/// let one_round = protocol_complex(3, 1);
/// assert_eq!(one_round.facet_count(), 13); // ordered partitions of 3
/// ```
#[must_use]
pub fn protocol_complex(n: usize, rounds: usize) -> ChromaticComplex {
    protocol_complex_with_stats(n, rounds).0
}

/// The seed's tuple-cloning subdivision builder, retained verbatim as
/// the reference oracle for the streaming pipeline
/// (`tests/streaming_equivalence.rs` asserts facet-level equality after
/// canonical ordering) and as the baseline of the construction bench.
///
/// # Panics
///
/// Panics if `n = 0`.
#[must_use]
pub fn protocol_complex_reference(n: usize, rounds: usize) -> ChromaticComplex {
    assert!(n > 0, "need at least one process");
    let ids: Vec<u32> = (1..=n as u32).collect();
    let partitions = ordered_partitions(&ids);
    let mut arena = ViewArena::new();
    // Facet frontier: per-execution view tuples, one key per process.
    let initial: Vec<ViewKey> = ids.iter().map(|&id| arena.initial(id)).collect();
    let mut frontier: Vec<Vec<ViewKey>> = vec![initial];
    for _ in 0..rounds {
        let mut next: Vec<Vec<ViewKey>> = Vec::with_capacity(frontier.len() * partitions.len());
        for views in &frontier {
            for partition in &partitions {
                // Apply one IS round: a process in block j sees blocks 1..=j.
                let mut next_views = views.clone();
                let mut seen_so_far: Vec<(u32, ViewKey)> = Vec::new();
                for block in partition {
                    for &q in block {
                        let qi = (q - 1) as usize;
                        seen_so_far.push((q, views[qi]));
                    }
                    for &p in block {
                        let pi = (p - 1) as usize;
                        next_views[pi] = arena.round(p, seen_so_far.clone());
                    }
                }
                next.push(next_views);
            }
        }
        // Distinct schedules can merge into one view tuple; dedup early so
        // the next round's fan-out works on distinct executions only.
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    // Materialize: one recursive View per distinct (color, key) vertex.
    let mut complex = ChromaticComplex::new(n);
    let mut vertex_of: HashMap<ViewKey, VertexId> = HashMap::new();
    for views in &frontier {
        let facet: Vec<_> = ids
            .iter()
            .zip(views)
            .map(|(&id, &key)| match vertex_of.get(&key) {
                Some(&v) => v,
                None => {
                    let v = complex.intern(Vertex {
                        color: id,
                        view: arena.view(key),
                    });
                    vertex_of.insert(key, v);
                    v
                }
            })
            .collect();
        complex.add_facet(facet);
    }
    complex.dedup_facets();
    complex
}

/// The process-wide memoized `χ^r(Δ^{n−1})`: built once per `(n, rounds)`
/// and shared behind an [`Arc`] — searches, certificates, and benches at
/// the same parameters reuse one complex (and its attached signature
/// quotient) instead of re-running the subdivision fan-out.
#[must_use]
pub fn shared_protocol_complex(n: usize, rounds: usize) -> Arc<ChromaticComplex> {
    type Cache = Mutex<HashMap<(usize, usize), Arc<ChromaticComplex>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(hit) = cache
        .lock()
        .expect("subdivision cache poisoned")
        .get(&(n, rounds))
    {
        return Arc::clone(hit);
    }
    // Build outside the lock: subdivisions can take milliseconds and other
    // threads may want different parameters meanwhile. A racing builder at
    // the same key just loses its copy.
    let built = Arc::new(protocol_complex(n, rounds));
    Arc::clone(
        cache
            .lock()
            .expect("subdivision cache poisoned")
            .entry((n, rounds))
            .or_insert(built),
    )
}

/// All permutations of the identities `1..=n`, lexicographic —
/// the process-renaming group `S_n` the orbit-quotient pipeline streams
/// over (`result[g][i]` = image of identity `i + 1` under element `g`;
/// element 0 is the identity).
#[must_use]
pub fn process_permutations(n: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut current: Vec<u32> = (1..=n as u32).collect();
    loop {
        out.push(current.clone());
        // Classic next-permutation step.
        let Some(i) = current.windows(2).rposition(|w| w[0] < w[1]) else {
            break;
        };
        let j = current
            .iter()
            .rposition(|&x| x > current[i])
            .expect("a successor exists right of the pivot");
        current.swap(i, j);
        current[i + 1..].reverse();
    }
    out
}

/// Construction counters of an orbit-quotient streaming build
/// ([`OrbitFrontier`]): the full complex's exact counts recovered via
/// orbit–stabilizer, next to the far smaller representative frontier
/// actually held in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrbitBuildStats {
    /// Facets of the represented full complex — `Σ n!/|Stab(row)|` over
    /// the canonical rows, exact by orbit–stabilizer.
    pub facets: usize,
    /// Canonical representative rows held at the current round (one per
    /// `S_n`-orbit of full facets).
    pub orbit_rows: usize,
    /// Largest representative frontier held at any round — the orbit
    /// pipeline's peak working-set measure (the full pipeline's
    /// equivalent peaks at `facets`).
    pub peak_orbit_rows: usize,
    /// Rows stamped across all rounds (representatives × templates) —
    /// the work the full pipeline pays once per facet.
    pub stamped_rows: usize,
    /// Distinct vertices of the represented full complex (filled by the
    /// constraint expansion).
    pub vertices: usize,
    /// View order-isomorphism classes of the represented full complex
    /// (filled by the constraint expansion).
    pub classes: usize,
    /// Subdivision rounds applied.
    pub rounds: usize,
}

/// The orbit-level output of [`OrbitFrontier::expand`]: everything a
/// search instance needs, over canonical class ids. The frontier's
/// arena (which materializes class views on demand) is obtained
/// separately — cloned when the frontier stays cached, moved when it is
/// consumed.
#[derive(Debug)]
pub(crate) struct OrbitExpansion {
    /// Signature key of each class, canonically ordered (ascending
    /// [`View`] order — the same order the full path sorts into).
    pub class_keys: Vec<ViewKey>,
    /// The distinct facet constraints of the **full** complex as sorted
    /// class multisets, flat (`n` class ids per constraint) and
    /// family-sorted — byte-identical to what
    /// [`SymmetricSearch::over_complex`](crate::SymmetricSearch)
    /// derives from the materialized complex.
    pub facet_classes: Vec<u32>,
    /// Candidate class permutations mined from the group image table:
    /// for each renaming `h` that acts *consistently* on the signature
    /// quotient (`class(g·rep) ↦ class((h∘g)·rep)` is functional), the
    /// induced class map. Candidates, not facts — the consumer verifies
    /// bijectivity and facet-family invariance before trusting one.
    pub class_perm_candidates: Vec<Vec<u32>>,
}

/// Bits per class id when a width-`n` sorted multiset is packed
/// big-endian into one `u128` (so integer order equals lexicographic
/// order). Capped at 32; for every reachable complex (`n ≤ 6` leaves 21
/// bits — 2M classes, far beyond what one core can build) the packing
/// is exact, and the packers assert it.
pub(crate) fn multiset_bits(n: usize) -> u32 {
    u32::try_from(128 / n.max(1)).unwrap_or(32).min(32)
}

/// Packs a sorted class multiset big-endian; unpacking is
/// [`unpack_multiset`]. Caller asserts every id fits in `bits`.
#[inline]
pub(crate) fn pack_multiset(ids: &[u32], bits: u32) -> u128 {
    let mut packed = 0u128;
    for &id in ids {
        debug_assert!(u128::from(id) < (1u128 << bits), "class id fits packing");
        packed = (packed << bits) | u128::from(id);
    }
    packed
}

/// Unpacks a [`pack_multiset`] word back into `out` (ascending ids).
#[inline]
pub(crate) fn unpack_multiset(packed: u128, bits: u32, out: &mut [u32]) {
    let mask = (1u128 << bits) - 1;
    let n = out.len();
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((packed >> (bits * u32::try_from(n - 1 - i).expect("width fits"))) & mask) as u32;
    }
}

/// The **orbit-quotient streaming frontier**: the subdivision pipeline
/// of [`protocol_complex`], quotiented by the process-renaming action
/// *during* generation instead of after it.
///
/// Every frontier of `χ^r(Δ^{n−1})` is invariant under `S_n` relabelling
/// (a permuted execution is an execution), and stamping commutes with
/// the action: `π · stamp(R, T) = stamp(π·R, π·T)`, with the template
/// set closed under relabelling. So the frontier can be held as **one
/// lex-leader representative per orbit**: each round stamps every
/// template onto every representative, canonicalizes the produced row
/// (minimum of its `S_n`-images under the arena's key order, via the
/// memoized [`ViewArena::permute`] machinery), and keeps each canonical
/// row once with its orbit size `n!/|Stab|` — the stabilizer order
/// falls out of the same scan as the count of group elements that tie
/// the minimum. Facet counts and per-class statistics stay *exact* by
/// orbit–stabilizer, while the held frontier shrinks by up to `n!`
/// (`χ³(Δ³)`: 421,875 rows → ~19k representatives).
///
/// [`OrbitFrontier::expand`] then walks each representative's orbit at
/// the *class* level — `n` memoized permute+signature lookups per group
/// element, served from a per-key table — to recover the full complex's
/// distinct facet constraints without ever materializing a
/// [`ChromaticComplex`]. The full builder remains the reference oracle
/// (`tests/orbit_equivalence.rs`), and evidence replay stays on it.
#[derive(Debug, Clone)]
pub struct OrbitFrontier {
    n: usize,
    arena: ViewArena,
    templates: Vec<RoundTemplate>,
    /// `S_n`, lexicographic; `group[g][i]` = image of identity `i + 1`.
    group: Vec<Vec<u32>>,
    /// Inverse permutations as 0-based positions: `inverse[g][q]` = the
    /// process index whose view lands at position `q` under `group[g]`.
    inverse: Vec<Vec<u32>>,
    /// Permutation array → group-element index (stabilizer recovery).
    group_index: HashMap<Vec<u32>, u16>,
    /// `tmpl_perm[t · n! + g]` = index of the template `group[g] · T_t`.
    tmpl_perm: Vec<u16>,
    /// Flat canonical rows, `n` keys per row (position `p` = process
    /// `p + 1`), one per orbit of the full frontier.
    rows: Vec<ViewKey>,
    /// Orbit size (`n!/|Stab|`) of each canonical row.
    orbit_sizes: Vec<u32>,
    /// Stabilizer of each canonical row, CSR-packed group indices
    /// (always led by the identity) — drives the next round's
    /// template-orbit skipping.
    stab_offsets: Vec<u32>,
    stab_data: Vec<u16>,
    /// Dense permutation-image cache: slot `key · n! + g` holds
    /// `permute(key, group[g])` (+1; 0 = not yet computed). One indexed
    /// read on the hot canonicalization path instead of a probe through
    /// the arena's permutation memo.
    perm_cache: Vec<u32>,
    stats: OrbitBuildStats,
}

/// [`ViewArena::permute`] through a dense `(key, perm-slot)` cache: a
/// repeat image is one indexed read. `stride` is the caller's slot
/// count per key; `perm_id` must stably identify `perm`.
#[inline]
fn cached_permute(
    cache: &mut Vec<u32>,
    arena: &mut ViewArena,
    key: ViewKey,
    slot_in_key: usize,
    stride: usize,
    perm: &[u32],
    perm_id: u32,
) -> ViewKey {
    let slot = key.index() * stride + slot_in_key;
    if slot >= cache.len() {
        // Doubling growth: the arena interns nodes one at a time while
        // images are computed, and resizing to the exact need each time
        // would re-copy the multi-megabyte cache per interned node.
        cache.resize((cache.len() * 2).max(arena.len() * stride).max(slot + 1), 0);
    }
    let cached = cache[slot];
    if cached != 0 {
        return ViewKey::from_index(cached as usize - 1);
    }
    let image = arena.permute(key, perm, perm_id);
    cache[slot] = u32::try_from(image.index() + 1).expect("arena fits in u32");
    image
}

impl OrbitFrontier {
    /// The round-0 frontier: the single facet of `Δ^{n−1}` (its own
    /// orbit — the initial row is fixed by every relabelling).
    ///
    /// # Panics
    ///
    /// Panics if `n = 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        let mut arena = ViewArena::new();
        let rows: Vec<ViewKey> = (1..=n as u32).map(|id| arena.initial(id)).collect();
        let group = process_permutations(n);
        let group_order = group.len();
        let inverse: Vec<Vec<u32>> = group
            .iter()
            .map(|perm| {
                let mut inv = vec![0u32; n];
                for (i, &to) in perm.iter().enumerate() {
                    inv[(to - 1) as usize] = u32::try_from(i).expect("n fits in u32");
                }
                inv
            })
            .collect();
        // Group-element index (for converting lex-leader tie cosets
        // into stabilizers by composition).
        let group_index: HashMap<Vec<u32>, u16> = group
            .iter()
            .enumerate()
            .map(|(g, perm)| (perm.clone(), u16::try_from(g).expect("group fits in u16")))
            .collect();
        let templates = round_templates(n);
        // tmpl_perm[t · n! + g] = index of π_g · T_t (relabel the
        // partition's members): stamp(π·R, π·T) = π · stamp(R, T).
        // Block vectors pack into 3-bit fields (block indices < n ≤ 6),
        // so the lookup side is one dense array read per permuted
        // template instead of a hash of the vector.
        let pack_blocks = |blocks: &[u32]| -> usize {
            blocks
                .iter()
                .enumerate()
                .map(|(q, &b)| (b as usize) << (3 * q))
                .sum()
        };
        let mut template_of_code = vec![u16::MAX; 1 << (3 * n)];
        for (t, tpl) in templates.iter().enumerate() {
            template_of_code[pack_blocks(tpl.block_assignment())] =
                u16::try_from(t).expect("templates fit in u16");
        }
        let mut tmpl_perm = vec![0u16; templates.len() * group_order];
        let mut permuted_blocks = vec![0u32; n];
        for (t, tpl) in templates.iter().enumerate() {
            let blocks = tpl.block_assignment();
            for (g, perm) in group.iter().enumerate() {
                for q in 0..n {
                    permuted_blocks[(perm[q] - 1) as usize] = blocks[q];
                }
                tmpl_perm[t * group_order + g] = template_of_code[pack_blocks(&permuted_blocks)];
            }
        }
        OrbitFrontier {
            n,
            arena,
            templates,
            group,
            inverse,
            group_index,
            tmpl_perm,
            rows,
            orbit_sizes: vec![1],
            // The initial row is fixed by the whole group.
            stab_offsets: vec![0, u32::try_from(group_order).expect("fits")],
            stab_data: (0..group_order)
                .map(|g| u16::try_from(g).expect("fits"))
                .collect(),
            perm_cache: Vec::new(),
            stats: OrbitBuildStats {
                facets: 1,
                orbit_rows: 1,
                peak_orbit_rows: 1,
                ..OrbitBuildStats::default()
            },
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds applied so far.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.stats.rounds
    }

    /// Current construction counters (class/vertex counts are filled by
    /// [`OrbitFrontier::expand`]).
    #[must_use]
    pub fn stats(&self) -> OrbitBuildStats {
        self.stats
    }

    /// First permutation-memo id unused by this frontier's group
    /// enumeration (callers needing further ad-hoc permutations on the
    /// shared arena start here).
    pub(crate) fn perm_id_base(&self) -> u32 {
        u32::try_from(self.group.len()).expect("fits in u32")
    }

    /// Applies one subdivision round at the orbit level: stamps one
    /// template per `Stab(representative)`-orbit onto every
    /// representative (duplicate canonical rows arise *exactly* from
    /// stabilizer-related templates, so nothing else is ever stamped),
    /// keeps the lex-leader of each produced orbit, and carries the
    /// orbit's exact size and stabilizer.
    pub fn advance(&mut self) {
        self.try_advance(None)
            .expect("ungoverned advance cannot stop");
    }

    /// [`OrbitFrontier::advance`] under a governance ticket: polls the
    /// ticket at a bounded representative-row stride and charges the
    /// round's cache/row allocations against its memory budget.
    ///
    /// **Abort safety:** the next round's rows are built locally and
    /// committed only at the end, so an `Err` return leaves the
    /// frontier logically at the *previous* round — safe to retry or
    /// drop (only arena interning and the `stamped_rows` counter have
    /// advanced).
    pub fn try_advance(&mut self, ticket: Option<&Ticket>) -> Result<(), Stopped> {
        let OrbitFrontier {
            n,
            arena,
            templates,
            group,
            inverse,
            group_index,
            tmpl_perm,
            rows,
            orbit_sizes,
            stab_offsets,
            stab_data,
            perm_cache,
            stats,
            ..
        } = self;
        let n = *n;
        let group_order = group.len();
        let mut next_rows: Vec<ViewKey> = Vec::new();
        let mut next_sizes: Vec<u32> = Vec::new();
        let mut next_stab_offsets: Vec<u32> = vec![0];
        let mut next_stab_data: Vec<u16> = Vec::new();
        let mut dedup = ProbeTable::with_capacity(rows.len() / n * templates.len());
        // Pre-size the image cache for the keys this round will create
        // (≈ stamped rows × n new nodes), so growth never re-copies it
        // mid-round.
        let expected_nodes = arena.len() + rows.len() * templates.len();
        if perm_cache.len() < expected_nodes * group_order {
            if let Some(t) = ticket {
                let grown = expected_nodes * group_order - perm_cache.len();
                t.charge_memory((grown * std::mem::size_of::<u32>()) as u64)?;
            }
            perm_cache.resize(expected_nodes * group_order, 0);
        }
        let mut scratch: Vec<(u32, ViewKey)> = vec![(0, ViewKey::from_index(0)); n];
        let mut stamped: Vec<ViewKey> = vec![ViewKey::from_index(0); n];
        let mut image = stamped.clone();
        let mut best = stamped.clone();
        let mut ties: Vec<u16> = Vec::with_capacity(group_order);
        let mut stab_scratch: Vec<u16> = Vec::with_capacity(group_order);
        let mut composed: Vec<u32> = vec![0; n];
        for (r, row) in rows.chunks_exact(n).enumerate() {
            if let Some(t) = ticket {
                // ticket.check poll site (representative-row stride)
                if r % 64 == 0 {
                    t.check()?;
                }
            }
            let stab = &stab_data[stab_offsets[r] as usize..stab_offsets[r + 1] as usize];
            for (t, template) in templates.iter().enumerate() {
                // Stamp only the minimum template of each Stab(row)
                // orbit; the others reproduce the same canonical row.
                if stab.len() > 1
                    && stab[1..]
                        .iter()
                        .any(|&h| tmpl_perm[t * group_order + h as usize] < t as u16)
                {
                    continue;
                }
                stats.stamped_rows += 1;
                for (p, slot) in stamped.iter_mut().enumerate() {
                    let (id, len, hash) = stamp_process(row, template, p, &mut scratch);
                    *slot = arena.round_prehashed(id, &scratch[..len], hash);
                }
                // Lex-leader scan: minimize the image tuple over the
                // group, comparing positions lazily. The elements tying
                // the final minimum form a coset of its stabilizer.
                best.copy_from_slice(&stamped);
                ties.clear();
                ties.push(0);
                for g in 1..group_order {
                    let inv = &inverse[g];
                    let mut verdict = std::cmp::Ordering::Equal;
                    for pos in 0..n {
                        let img = cached_permute(
                            perm_cache,
                            arena,
                            stamped[inv[pos] as usize],
                            g,
                            group_order,
                            &group[g],
                            g as u32,
                        );
                        image[pos] = img;
                        match img.cmp(&best[pos]) {
                            std::cmp::Ordering::Equal => {}
                            other => {
                                verdict = other;
                                if other == std::cmp::Ordering::Less {
                                    for rest in pos + 1..n {
                                        image[rest] = cached_permute(
                                            perm_cache,
                                            arena,
                                            stamped[inv[rest] as usize],
                                            g,
                                            group_order,
                                            &group[g],
                                            g as u32,
                                        );
                                    }
                                }
                                break;
                            }
                        }
                    }
                    match verdict {
                        std::cmp::Ordering::Less => {
                            best.copy_from_slice(&image);
                            ties.clear();
                            ties.push(u16::try_from(g).expect("group fits in u16"));
                        }
                        std::cmp::Ordering::Equal => {
                            ties.push(u16::try_from(g).expect("group fits in u16"));
                        }
                        std::cmp::Ordering::Greater => {}
                    }
                }
                debug_assert_eq!(group_order % ties.len(), 0, "stabilizers divide the group");
                let hash = row_hash(&best);
                let start_of = |entry: u32| entry as usize * n;
                if dedup
                    .find(hash, |entry| next_rows[start_of(entry)..][..n] == *best)
                    .is_none()
                {
                    let entry = u32::try_from(next_rows.len() / n).expect("rows fit in u32");
                    dedup.insert(hash, entry);
                    next_rows.extend_from_slice(&best);
                    next_sizes
                        .push(u32::try_from(group_order / ties.len()).expect("orbit fits in u32"));
                    // Stab(best) = ties ∘ ties[0]⁻¹ (the scan found the
                    // coset {g : g·stamped = best}).
                    let t0 = ties[0] as usize;
                    stab_scratch.clear();
                    for &t in &ties {
                        let perm_t = &group[t as usize];
                        for i in 0..n {
                            // π_t ∘ π_{t0}⁻¹ applied to i + 1.
                            composed[i] = perm_t[inverse[t0][i] as usize];
                        }
                        stab_scratch.push(group_index[&composed]);
                    }
                    stab_scratch.sort_unstable();
                    debug_assert_eq!(stab_scratch.first(), Some(&0), "stabilizers contain id");
                    next_stab_data.extend_from_slice(&stab_scratch);
                    next_stab_offsets
                        .push(u32::try_from(next_stab_data.len()).expect("fits in u32"));
                } else {
                    debug_assert!(
                        false,
                        "stabilizer-orbit template skipping removes duplicates"
                    );
                }
            }
        }
        if let Some(t) = ticket {
            // Post-hoc memory charge for the round's committed rows and
            // stabilizer tables; an `Err` here still leaves the frontier
            // at the previous round (see the abort-safety note above).
            let committed = next_rows.len() * std::mem::size_of::<ViewKey>()
                + next_sizes.len() * std::mem::size_of::<u32>()
                + next_stab_data.len() * std::mem::size_of::<u16>();
            t.charge_memory(committed as u64)?;
        }
        *rows = next_rows;
        *orbit_sizes = next_sizes;
        *stab_offsets = next_stab_offsets;
        *stab_data = next_stab_data;
        stats.rounds += 1;
        stats.orbit_rows = rows.len() / n;
        stats.peak_orbit_rows = stats.peak_orbit_rows.max(stats.orbit_rows);
        stats.facets = orbit_sizes.iter().map(|&s| s as usize).sum();
        Ok(())
    }

    /// Walks every representative's orbit at the class level and
    /// returns the full complex's distinct facet constraints over
    /// canonically ordered classes (see [`OrbitExpansion`]), filling
    /// the vertex/class counters of [`OrbitFrontier::stats`].
    ///
    /// The σ∘ρ factorization does the heavy lifting: `sig(π·v) = ρ·σ`
    /// where `σ = sig(v)` and `ρ` is `π`'s rank pattern on `supp(v)` —
    /// so one memoized canonical-to-canonical permutation per
    /// `(σ, pattern)` yields the class key directly, with no image
    /// vertex ever interned and no second signature pass. Vertex counts
    /// come from the same factorization: a class of support size `s`
    /// has exactly `C(n, s)` vertices (one per support), so
    /// `vertices = Σ_classes C(n, s)`.
    pub(crate) fn expand(&mut self) -> OrbitExpansion {
        self.try_expand(None)
            .expect("ungoverned expand cannot stop")
    }

    /// [`OrbitFrontier::expand`] under a governance ticket: polls the
    /// ticket once per group element and per emission stride, and
    /// charges the image/constraint tables against its memory budget.
    /// Expansion never mutates the frontier's rows, so an `Err` return
    /// leaves the frontier valid for later extension.
    pub(crate) fn try_expand(
        &mut self,
        ticket: Option<&Ticket>,
    ) -> Result<OrbitExpansion, Stopped> {
        let OrbitFrontier {
            n,
            arena,
            group,
            group_index,
            rows,
            stats,
            ..
        } = self;
        let n = *n;
        let group_order = group.len();
        // Distinct representative keys, discovery order.
        let mut slot_of_key: Vec<u32> = vec![u32::MAX; arena.len()];
        let mut distinct_keys: Vec<ViewKey> = Vec::new();
        for &key in rows.iter() {
            if slot_of_key[key.index()] == u32::MAX {
                slot_of_key[key.index()] = u32::try_from(distinct_keys.len()).expect("fits in u32");
                distinct_keys.push(key);
            }
        }
        // For each group element, one bottom-up pass over the reachable
        // sub-DAG assembles every image with dense child lookups (no
        // memo probes); class ids then come from the memoized signature
        // of the image.
        let closure = arena.reachable_closure(&distinct_keys);
        let mut column: Vec<u32> = Vec::new();
        if let Some(t) = ticket {
            let table_bytes = distinct_keys.len() * group_order * std::mem::size_of::<u32>();
            t.charge_memory(table_bytes as u64)?;
        }
        let mut table = vec![0u32; distinct_keys.len() * group_order];
        let mut sigs: Vec<ViewKey> = Vec::new();
        let mut sig_slot: Vec<u32> = Vec::new(); // indexed by arena key, grown on demand
        let bits = multiset_bits(n);
        for g in 0..group_order {
            if let Some(t) = ticket {
                // ticket.check poll site (group-element stride)
                t.check()?;
            }
            if g > 0 {
                arena.permute_column(&closure, &group[g], &mut column);
            }
            for (slot, &key) in distinct_keys.iter().enumerate() {
                let image = if g == 0 {
                    key
                } else {
                    ViewKey::from_index(column[key.index()] as usize - 1)
                };
                let class_key = arena.signature(image);
                if sig_slot.len() <= class_key.index() {
                    sig_slot.resize(class_key.index() + 1, u32::MAX);
                }
                if sig_slot[class_key.index()] == u32::MAX {
                    let id = u32::try_from(sigs.len()).expect("fits in u32");
                    assert!(
                        u128::from(id) < (1u128 << bits),
                        "class count exceeds the {bits}-bit constraint packing at n = {n}"
                    );
                    sig_slot[class_key.index()] = id;
                    sigs.push(class_key);
                }
                table[slot * group_order + g] = sig_slot[class_key.index()];
            }
        }
        stats.classes = sigs.len();
        // One vertex per (class, support): Σ C(n, support size).
        let mut binomial = vec![0usize; n + 1];
        for (s, slot) in binomial.iter_mut().enumerate() {
            let mut value = 1usize;
            for i in 0..s {
                value = value * (n - i) / (i + 1);
            }
            *slot = value;
        }
        stats.vertices = sigs
            .iter()
            .map(|&sig| binomial[arena.support_len(sig) as usize])
            .sum();
        // Canonical class order: ascending view order, matching the
        // full path's sort of materialized signature views — computed
        // as bulk layered ranks over the whole arena, then the class
        // table is rewritten to canonical ids up front so constraints
        // need no post-hoc remap.
        let ranks = arena.view_order_ranks();
        let mut order: Vec<u32> = (0..u32::try_from(sigs.len()).expect("fits in u32")).collect();
        order.sort_unstable_by_key(|&slot| ranks[sigs[slot as usize].index()]);
        let mut class_of_slot = vec![0u32; sigs.len()];
        for (class, &slot) in order.iter().enumerate() {
            class_of_slot[slot as usize] = u32::try_from(class).expect("fits in u32");
        }
        let class_keys: Vec<ViewKey> = order.iter().map(|&slot| sigs[slot as usize]).collect();
        for entry in &mut table {
            *entry = class_of_slot[*entry as usize];
        }
        // Class-permutation mining over the canonical image table: a
        // renaming `h` descends to the signature quotient iff
        // `class(g·rep) ↦ class((h∘g)·rep)` is functional across every
        // representative and every `g` — and the table already holds
        // both sides of that map. Most `h` clash within a handful of
        // entries (signatures erase process ids, so few renamings act
        // consistently on classes); survivors are *candidates* only,
        // re-verified downstream (bijectivity + facet-family
        // invariance) before orbit learning or orbit-guided decisions
        // trust them.
        let classes = sigs.len();
        let mut class_perm_candidates: Vec<Vec<u32>> = Vec::new();
        'mine: for h in 1..group_order {
            if let Some(t) = ticket {
                // ticket.check poll site (perm-mining stride)
                t.check()?;
            }
            // compose[g] = index of h∘g (apply `g`, then `h`).
            let compose: Vec<usize> = (0..group_order)
                .map(|g| {
                    let composed: Vec<u32> =
                        group[g].iter().map(|&i| group[h][i as usize - 1]).collect();
                    usize::from(group_index[&composed])
                })
                .collect();
            let mut cand = vec![u32::MAX; classes];
            for slot in 0..distinct_keys.len() {
                let row = &table[slot * group_order..(slot + 1) * group_order];
                for (g, &hg) in compose.iter().enumerate() {
                    let (src, img) = (row[g] as usize, row[hg]);
                    if cand[src] == u32::MAX {
                        cand[src] = img;
                    } else if cand[src] != img {
                        continue 'mine;
                    }
                }
            }
            if cand.contains(&u32::MAX) || cand.iter().enumerate().all(|(i, &p)| p == i as u32) {
                continue;
            }
            if !class_perm_candidates.contains(&cand) {
                class_perm_candidates.push(cand);
            }
        }
        // Constraint emission: one packed word per (representative,
        // group element) — big-endian packing makes word order equal
        // lexicographic multiset order, so a single u128 sort both
        // deduplicates the family and puts it in canonical order. No
        // hashing, no per-constraint allocation.
        if let Some(t) = ticket {
            let emission_bytes = rows.len() / n * group_order * std::mem::size_of::<u128>();
            t.charge_memory(emission_bytes as u64)?;
        }
        let mut packed_constraints: Vec<u128> = Vec::with_capacity(rows.len() / n * group_order);
        let mut multiset: Vec<u32> = vec![0; n];
        for (r, row) in rows.chunks_exact(n).enumerate() {
            if let Some(t) = ticket {
                // ticket.check poll site (emission stride)
                if r % 64 == 0 {
                    t.check()?;
                }
            }
            for g in 0..group_order {
                for (pos, &key) in row.iter().enumerate() {
                    multiset[pos] = table[slot_of_key[key.index()] as usize * group_order + g];
                }
                multiset.sort_unstable();
                packed_constraints.push(pack_multiset(&multiset, bits));
            }
        }
        packed_constraints.sort_unstable();
        packed_constraints.dedup();
        let mut facet_classes: Vec<u32> = vec![0; packed_constraints.len() * n];
        for (chunk, &packed) in facet_classes.chunks_exact_mut(n).zip(&packed_constraints) {
            unpack_multiset(packed, bits, chunk);
        }
        Ok(OrbitExpansion {
            class_keys,
            facet_classes,
            class_perm_candidates,
        })
    }

    /// A clone of the frontier's arena (for callers that keep the
    /// frontier cached for later round extension).
    pub(crate) fn clone_arena(&self) -> ViewArena {
        self.arena.clone()
    }

    /// Consumes the frontier, yielding its arena without a copy (the
    /// one-shot streaming path).
    pub(crate) fn into_arena(self) -> ViewArena {
        self.arena
    }

    /// Runs the constraint expansion for its side effect only: the
    /// vertex/class counters of [`OrbitFrontier::stats`] (the
    /// `gsb complex --orbits` report path).
    pub fn quotient_stats(&mut self) -> OrbitBuildStats {
        let _ = self.expand();
        self.stats
    }
}

/// Facet counts of `χ^r(Δ^{n−1})` known in closed form for one round: the
/// ordered Bell numbers. Exposed for tests and benches.
#[must_use]
pub fn ordered_bell(n: usize) -> usize {
    // a(n) = Σ_{k=1..n} C(n,k)·a(n−k), a(0) = 1.
    let mut a = vec![0usize; n + 1];
    a[0] = 1;
    for i in 1..=n {
        let mut total = 0usize;
        let mut binom = 1usize; // C(i, k)
        for k in 1..=i {
            binom = binom * (i - k + 1) / k;
            total += binom * a[i - k];
        }
        a[i] = total;
    }
    a[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::View;

    #[test]
    fn ordered_bell_numbers() {
        assert_eq!(ordered_bell(0), 1);
        assert_eq!(ordered_bell(1), 1);
        assert_eq!(ordered_bell(2), 3);
        assert_eq!(ordered_bell(3), 13);
        assert_eq!(ordered_bell(4), 75);
        assert_eq!(ordered_bell(5), 541);
    }

    #[test]
    fn one_round_facet_counts_match_ordered_bell() {
        for n in 1..=4 {
            let complex = protocol_complex(n, 1);
            assert_eq!(complex.facet_count(), ordered_bell(n), "n = {n}");
        }
    }

    #[test]
    fn two_round_facet_count_n2() {
        // χ²(Δ¹): the edge subdivided twice: 3² = 9 facets.
        let complex = protocol_complex(2, 2);
        assert_eq!(complex.facet_count(), 9);
    }

    #[test]
    fn zero_rounds_is_a_single_simplex() {
        let complex = protocol_complex(3, 0);
        assert_eq!(complex.facet_count(), 1);
        assert_eq!(complex.vertices().len(), 3);
    }

    #[test]
    fn subdivisions_are_pseudomanifolds() {
        for (n, r) in [(2usize, 1usize), (2, 2), (2, 3), (3, 1), (3, 2), (4, 1)] {
            let complex = protocol_complex(n, r);
            assert!(complex.is_pseudomanifold(), "χ^{r}(Δ^{}) n={n}", n - 1);
            assert!(complex.is_strongly_connected(), "χ^{r} n={n}");
        }
    }

    #[test]
    fn boundary_of_subdivided_edge() {
        // χ(Δ¹) is a path: exactly 2 boundary vertices (the corners).
        let complex = protocol_complex(2, 1);
        assert_eq!(complex.boundary_ridge_count(), 2);
        // χ(Δ²)'s boundary is the subdivided triangle boundary: each of
        // the 3 edges of Δ² is subdivided into a path of 3 edges → 9
        // boundary ridges.
        let complex = protocol_complex(3, 1);
        assert_eq!(complex.boundary_ridge_count(), 9);
    }

    #[test]
    fn vertex_views_have_expected_depth() {
        let complex = protocol_complex(3, 2);
        for v in complex.vertices() {
            assert_eq!(v.view.depth(), 2);
            assert_eq!(v.view.id(), v.color);
        }
    }

    #[test]
    fn solo_corner_exists_per_color() {
        // In χ(Δ²) each color has a corner vertex seeing only itself.
        let complex = protocol_complex(3, 1);
        for color in 1..=3u32 {
            let solo = View::one_round(color, &[color]);
            assert!(
                complex
                    .vertices()
                    .iter()
                    .any(|v| v.color == color && v.view == solo),
                "missing solo corner for color {color}"
            );
        }
    }

    #[test]
    fn shared_complex_is_memoized_and_identical() {
        let a = shared_protocol_complex(3, 1);
        let b = shared_protocol_complex(3, 1);
        assert!(Arc::ptr_eq(&a, &b), "same (n, r) must share one build");
        let fresh = protocol_complex(3, 1);
        assert_eq!(a.facet_count(), fresh.facet_count());
        assert_eq!(a.vertices().len(), fresh.vertices().len());
    }

    #[test]
    fn build_stats_reflect_the_construction() {
        let (complex, stats) = protocol_complex_with_stats(3, 2);
        assert_eq!(stats.facets, complex.facet_count());
        assert_eq!(stats.vertices, complex.vertices().len());
        assert_eq!(stats.classes, complex.signature_quotient().classes.len());
        // The final frontier is the facet set, and it is the largest.
        assert_eq!(stats.peak_frontier_rows, complex.facet_count());
        assert!(stats.chunks >= 1);
    }

    #[test]
    fn chunked_fanout_is_identical_to_serial_stamping() {
        // The multi-chunk path (chunk-local node tables + serial merge)
        // is unreachable through the public API on a 1-core host, so
        // force it: chunks are contiguous frontier ranges replayed in
        // order, hence the build must be bit-identical to the serial
        // one — same facet rows, same vertex numbering, same classes.
        for workers in [2usize, 3, 5] {
            let (serial, serial_stats) = protocol_complex_with_workers(3, 2, 1);
            let (chunked, chunked_stats) = protocol_complex_with_workers(3, 2, workers);
            assert!(chunked_stats.chunks > 1, "fan-out engaged ({workers})");
            assert_eq!(serial_stats.facets, chunked_stats.facets);
            assert_eq!(serial.facet_data(), chunked.facet_data());
            assert_eq!(serial.vertices(), chunked.vertices());
            let sq = serial.signature_quotient();
            let cq = chunked.signature_quotient();
            assert_eq!(sq.classes, cq.classes);
            assert_eq!(sq.vertex_class, cq.vertex_class);
        }
        // A width wider than the frontier rows degrades to one chunk.
        let (wide, wide_stats) = protocol_complex_with_workers(2, 1, 64);
        assert_eq!(wide_stats.chunks, 1);
        assert_eq!(wide.facet_count(), 3);
    }

    #[test]
    fn process_permutations_enumerate_the_symmetric_group() {
        assert_eq!(process_permutations(0), vec![Vec::<u32>::new()]);
        assert_eq!(process_permutations(1), vec![vec![1]]);
        let s3 = process_permutations(3);
        assert_eq!(s3.len(), 6);
        assert_eq!(s3[0], vec![1, 2, 3], "element 0 is the identity");
        assert_eq!(s3[5], vec![3, 2, 1], "lexicographically last");
        let distinct: std::collections::HashSet<_> = s3.iter().collect();
        assert_eq!(distinct.len(), 6);
        assert_eq!(process_permutations(4).len(), 24);
    }

    #[test]
    fn orbit_frontier_counts_facets_exactly_by_orbit_stabilizer() {
        // Orbits of one-round facets are template orbits under S_n, i.e.
        // compositions of n; the orbit sizes must re-sum to the ordered
        // Bell number exactly.
        for (n, orbit_rows) in [(1usize, 1usize), (2, 2), (3, 4), (4, 8)] {
            let mut frontier = OrbitFrontier::new(n);
            assert_eq!(frontier.stats().facets, 1, "round 0 is one facet");
            frontier.advance();
            let stats = frontier.stats();
            assert_eq!(stats.orbit_rows, orbit_rows, "compositions of {n}");
            assert_eq!(stats.facets, ordered_bell(n), "n = {n}");
        }
        // n = 3, r = 1 forces non-trivial stabilizers: the four orbits
        // have sizes 6, 3, 3, 1 (the all-see-all schedule is fixed by
        // every relabelling) — only exact orbit–stabilizer accounting
        // makes 13.
        let mut frontier = OrbitFrontier::new(3);
        frontier.advance();
        let mut sizes = frontier.orbit_sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3, 6]);
    }

    #[test]
    fn orbit_frontier_matches_full_build_through_rounds() {
        for (n, r) in [(2usize, 3usize), (3, 2), (4, 2), (5, 1)] {
            let (_, full) = protocol_complex_with_stats(n, r);
            let mut frontier = OrbitFrontier::new(n);
            for _ in 0..r {
                frontier.advance();
            }
            let orbit = frontier.quotient_stats();
            assert_eq!(orbit.facets, full.facets, "facets at ({n},{r})");
            assert_eq!(orbit.vertices, full.vertices, "vertices at ({n},{r})");
            assert_eq!(orbit.classes, full.classes, "classes at ({n},{r})");
            assert_eq!(orbit.rounds, r);
            assert!(
                orbit.peak_orbit_rows <= full.peak_frontier_rows,
                "the representative frontier never exceeds the full one"
            );
        }
    }

    #[test]
    fn orbit_expansion_is_stable_across_repeat_and_extension() {
        // Expanding, extending a round, and expanding again must agree
        // with a fresh build at the deeper round (the EngineCache
        // extends cached frontiers in place during sweeps).
        let mut extended = OrbitFrontier::new(3);
        extended.advance();
        let first = extended.expand();
        extended.advance();
        let second = extended.expand();
        let mut fresh = OrbitFrontier::new(3);
        fresh.advance();
        fresh.advance();
        let fresh_expansion = fresh.expand();
        assert_eq!(second.facet_classes, fresh_expansion.facet_classes);
        assert_eq!(second.class_keys.len(), fresh_expansion.class_keys.len());
        assert_eq!(extended.stats().facets, fresh.stats().facets);
        // And the round-1 expansion was not clobbered by the extension.
        let mut fresh1 = OrbitFrontier::new(3);
        fresh1.advance();
        assert_eq!(first.facet_classes, fresh1.expand().facet_classes);
    }

    #[test]
    fn streamed_quotient_matches_recomputation() {
        // The builder-attached quotient must be indistinguishable from
        // what the complex would compute from scratch: same classes in
        // the same order, same per-vertex class ids.
        let streamed = protocol_complex(3, 2);
        let attached = streamed.signature_quotient();
        let mut scratch = ChromaticComplex::new(3);
        for facet in streamed.facets() {
            let vertices: Vec<VertexId> = facet
                .iter()
                .map(|&v| scratch.intern(streamed.vertices()[v as usize].clone()))
                .collect();
            scratch.add_facet(vertices);
        }
        let recomputed = scratch.signature_quotient();
        assert_eq!(attached.classes, recomputed.classes);
        assert_eq!(attached.vertex_class, recomputed.vertex_class);
    }
}
