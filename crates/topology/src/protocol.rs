//! Iterated immediate-snapshot protocol complexes (standard chromatic
//! subdivisions).
//!
//! One round of immediate snapshot among processes `1..n` corresponds to
//! an *ordered partition* `(B_1, …, B_k)` of `{1..n}`: a process in block
//! `B_j` sees exactly `B_1 ∪ … ∪ B_j`. The complex whose facets are these
//! executions is the standard chromatic subdivision `χ(Δ^{n−1})`;
//! iterating `r` times gives `χ^r(Δ^{n−1})`, the protocol complex of the
//! `r`-round full-information IIS algorithm. A one-shot comparison-based
//! task is solvable by such an algorithm iff a *symmetric* simplicial
//! decision map exists on some `χ^r` (see
//! [`solvability`](crate::solvability)).
//!
//! The builder works over a [`ViewArena`]: each round maps facet view
//! tuples (as `u32` keys) through the ordered partitions, so no recursive
//! [`View`](crate::views::View) tree is ever cloned; full views are
//! materialized once per distinct vertex at the end.
//! [`shared_protocol_complex`] memoizes the finished complex per
//! `(n, rounds)` behind a process-wide table, mirroring the atlas memo
//! pattern — repeated searches at the same parameters share one build.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::complex::{ChromaticComplex, Vertex};
use crate::views::{ordered_partitions, ViewArena, ViewKey};

/// Builds the `r`-round IIS protocol complex `χ^r(Δ^{n−1})` for processes
/// with identities `1..n`.
///
/// Facet counts grow as (ordered Bell number of `n`)^`r` before
/// deduplication — keep `n ≤ 4`, `r ≤ 2` for interactive use.
///
/// # Panics
///
/// Panics if `n = 0`.
///
/// # Examples
///
/// ```
/// use gsb_topology::protocol_complex;
///
/// let one_round = protocol_complex(3, 1);
/// assert_eq!(one_round.facet_count(), 13); // ordered partitions of 3
/// ```
#[must_use]
pub fn protocol_complex(n: usize, rounds: usize) -> ChromaticComplex {
    assert!(n > 0, "need at least one process");
    let ids: Vec<u32> = (1..=n as u32).collect();
    let partitions = ordered_partitions(&ids);
    let mut arena = ViewArena::new();
    // Facet frontier: per-execution view tuples, one key per process.
    let initial: Vec<ViewKey> = ids.iter().map(|&id| arena.initial(id)).collect();
    let mut frontier: Vec<Vec<ViewKey>> = vec![initial];
    for _ in 0..rounds {
        let mut next: Vec<Vec<ViewKey>> = Vec::with_capacity(frontier.len() * partitions.len());
        for views in &frontier {
            for partition in &partitions {
                // Apply one IS round: a process in block j sees blocks 1..=j.
                let mut next_views = views.clone();
                let mut seen_so_far: Vec<(u32, ViewKey)> = Vec::new();
                for block in partition {
                    for &q in block {
                        let qi = (q - 1) as usize;
                        seen_so_far.push((q, views[qi]));
                    }
                    for &p in block {
                        let pi = (p - 1) as usize;
                        next_views[pi] = arena.round(p, seen_so_far.clone());
                    }
                }
                next.push(next_views);
            }
        }
        // Distinct schedules can merge into one view tuple; dedup early so
        // the next round's fan-out works on distinct executions only.
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    // Materialize: one recursive View per distinct (color, key) vertex.
    let mut complex = ChromaticComplex::new(n);
    let mut vertex_of: HashMap<ViewKey, crate::complex::VertexId> = HashMap::new();
    for views in &frontier {
        let facet: Vec<_> = ids
            .iter()
            .zip(views)
            .map(|(&id, &key)| match vertex_of.get(&key) {
                Some(&v) => v,
                None => {
                    let v = complex.intern(Vertex {
                        color: id,
                        view: arena.view(key),
                    });
                    vertex_of.insert(key, v);
                    v
                }
            })
            .collect();
        complex.add_facet(facet);
    }
    complex.dedup_facets();
    complex
}

/// The process-wide memoized `χ^r(Δ^{n−1})`: built once per `(n, rounds)`
/// and shared behind an [`Arc`] — searches, certificates, and benches at
/// the same parameters reuse one complex instead of re-running the
/// subdivision fan-out.
#[must_use]
pub fn shared_protocol_complex(n: usize, rounds: usize) -> Arc<ChromaticComplex> {
    type Cache = Mutex<HashMap<(usize, usize), Arc<ChromaticComplex>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(hit) = cache
        .lock()
        .expect("subdivision cache poisoned")
        .get(&(n, rounds))
    {
        return Arc::clone(hit);
    }
    // Build outside the lock: subdivisions can take milliseconds and other
    // threads may want different parameters meanwhile. A racing builder at
    // the same key just loses its copy.
    let built = Arc::new(protocol_complex(n, rounds));
    Arc::clone(
        cache
            .lock()
            .expect("subdivision cache poisoned")
            .entry((n, rounds))
            .or_insert(built),
    )
}

/// Facet counts of `χ^r(Δ^{n−1})` known in closed form for one round: the
/// ordered Bell numbers. Exposed for tests and benches.
#[must_use]
pub fn ordered_bell(n: usize) -> usize {
    // a(n) = Σ_{k=1..n} C(n,k)·a(n−k), a(0) = 1.
    let mut a = vec![0usize; n + 1];
    a[0] = 1;
    for i in 1..=n {
        let mut total = 0usize;
        let mut binom = 1usize; // C(i, k)
        for k in 1..=i {
            binom = binom * (i - k + 1) / k;
            total += binom * a[i - k];
        }
        a[i] = total;
    }
    a[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::View;

    #[test]
    fn ordered_bell_numbers() {
        assert_eq!(ordered_bell(0), 1);
        assert_eq!(ordered_bell(1), 1);
        assert_eq!(ordered_bell(2), 3);
        assert_eq!(ordered_bell(3), 13);
        assert_eq!(ordered_bell(4), 75);
        assert_eq!(ordered_bell(5), 541);
    }

    #[test]
    fn one_round_facet_counts_match_ordered_bell() {
        for n in 1..=4 {
            let complex = protocol_complex(n, 1);
            assert_eq!(complex.facet_count(), ordered_bell(n), "n = {n}");
        }
    }

    #[test]
    fn two_round_facet_count_n2() {
        // χ²(Δ¹): the edge subdivided twice: 3² = 9 facets.
        let complex = protocol_complex(2, 2);
        assert_eq!(complex.facet_count(), 9);
    }

    #[test]
    fn zero_rounds_is_a_single_simplex() {
        let complex = protocol_complex(3, 0);
        assert_eq!(complex.facet_count(), 1);
        assert_eq!(complex.vertices().len(), 3);
    }

    #[test]
    fn subdivisions_are_pseudomanifolds() {
        for (n, r) in [(2usize, 1usize), (2, 2), (2, 3), (3, 1), (3, 2), (4, 1)] {
            let complex = protocol_complex(n, r);
            assert!(complex.is_pseudomanifold(), "χ^{r}(Δ^{}) n={n}", n - 1);
            assert!(complex.is_strongly_connected(), "χ^{r} n={n}");
        }
    }

    #[test]
    fn boundary_of_subdivided_edge() {
        // χ(Δ¹) is a path: exactly 2 boundary vertices (the corners).
        let complex = protocol_complex(2, 1);
        assert_eq!(complex.boundary_ridge_count(), 2);
        // χ(Δ²)'s boundary is the subdivided triangle boundary: each of
        // the 3 edges of Δ² is subdivided into a path of 3 edges → 9
        // boundary ridges.
        let complex = protocol_complex(3, 1);
        assert_eq!(complex.boundary_ridge_count(), 9);
    }

    #[test]
    fn vertex_views_have_expected_depth() {
        let complex = protocol_complex(3, 2);
        for v in complex.vertices() {
            assert_eq!(v.view.depth(), 2);
            assert_eq!(v.view.id(), v.color);
        }
    }

    #[test]
    fn solo_corner_exists_per_color() {
        // In χ(Δ²) each color has a corner vertex seeing only itself.
        let complex = protocol_complex(3, 1);
        for color in 1..=3u32 {
            let solo = View::one_round(color, &[color]);
            assert!(
                complex
                    .vertices()
                    .iter()
                    .any(|v| v.color == color && v.view == solo),
                "missing solo corner for color {color}"
            );
        }
    }

    #[test]
    fn shared_complex_is_memoized_and_identical() {
        let a = shared_protocol_complex(3, 1);
        let b = shared_protocol_complex(3, 1);
        assert!(Arc::ptr_eq(&a, &b), "same (n, r) must share one build");
        let fresh = protocol_complex(3, 1);
        assert_eq!(a.facet_count(), fresh.facet_count());
        assert_eq!(a.vertices().len(), fresh.vertices().len());
    }
}
