//! Iterated immediate-snapshot protocol complexes (standard chromatic
//! subdivisions).
//!
//! One round of immediate snapshot among processes `1..n` corresponds to
//! an *ordered partition* `(B_1, …, B_k)` of `{1..n}`: a process in block
//! `B_j` sees exactly `B_1 ∪ … ∪ B_j`. The complex whose facets are these
//! executions is the standard chromatic subdivision `χ(Δ^{n−1})`;
//! iterating `r` times gives `χ^r(Δ^{n−1})`, the protocol complex of the
//! `r`-round full-information IIS algorithm. A one-shot comparison-based
//! task is solvable by such an algorithm iff a *symmetric* simplicial
//! decision map exists on some `χ^r` (see
//! [`solvability`](crate::solvability)).

use crate::complex::{ChromaticComplex, Vertex};
use crate::views::{ordered_partitions, View};

/// Builds the `r`-round IIS protocol complex `χ^r(Δ^{n−1})` for processes
/// with identities `1..n`.
///
/// Facet counts grow as (ordered Bell number of `n`)^`r` before
/// deduplication — keep `n ≤ 4`, `r ≤ 2` for interactive use.
///
/// # Panics
///
/// Panics if `n = 0`.
///
/// # Examples
///
/// ```
/// use gsb_topology::protocol_complex;
///
/// let one_round = protocol_complex(3, 1);
/// assert_eq!(one_round.facet_count(), 13); // ordered partitions of 3
/// ```
#[must_use]
pub fn protocol_complex(n: usize, rounds: usize) -> ChromaticComplex {
    assert!(n > 0, "need at least one process");
    let ids: Vec<u32> = (1..=n as u32).collect();
    // State: per-process current view, starting with the initial states.
    let initial: Vec<View> = ids.iter().map(|&id| View::Initial { id }).collect();
    let mut complex = ChromaticComplex::new(n);
    let partitions = ordered_partitions(&ids);
    build_rec(&ids, &initial, rounds, &partitions, &mut complex);
    complex.dedup_facets();
    complex
}

fn build_rec(
    ids: &[u32],
    views: &[View],
    rounds_left: usize,
    partitions: &[Vec<Vec<u32>>],
    complex: &mut ChromaticComplex,
) {
    if rounds_left == 0 {
        let facet: Vec<_> = ids
            .iter()
            .zip(views)
            .map(|(&id, view)| {
                complex.intern(Vertex {
                    color: id,
                    view: view.clone(),
                })
            })
            .collect();
        complex.add_facet(facet);
        return;
    }
    for partition in partitions {
        // Apply one IS round: a process in block j sees blocks 1..=j.
        let mut next_views = views.to_vec();
        let mut seen_so_far: Vec<(u32, View)> = Vec::new();
        for block in partition {
            for &q in block {
                let qi = ids.iter().position(|&x| x == q).expect("id in range");
                seen_so_far.push((q, views[qi].clone()));
            }
            for &p in block {
                let pi = ids.iter().position(|&x| x == p).expect("id in range");
                let mut seen = seen_so_far.clone();
                seen.sort();
                next_views[pi] = View::Round { id: p, seen };
            }
        }
        build_rec(ids, &next_views, rounds_left - 1, partitions, complex);
    }
}

/// Facet counts of `χ^r(Δ^{n−1})` known in closed form for one round: the
/// ordered Bell numbers. Exposed for tests and benches.
#[must_use]
pub fn ordered_bell(n: usize) -> usize {
    // a(n) = Σ_{k=1..n} C(n,k)·a(n−k), a(0) = 1.
    let mut a = vec![0usize; n + 1];
    a[0] = 1;
    for i in 1..=n {
        let mut total = 0usize;
        let mut binom = 1usize; // C(i, k)
        for k in 1..=i {
            binom = binom * (i - k + 1) / k;
            total += binom * a[i - k];
        }
        a[i] = total;
    }
    a[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_bell_numbers() {
        assert_eq!(ordered_bell(0), 1);
        assert_eq!(ordered_bell(1), 1);
        assert_eq!(ordered_bell(2), 3);
        assert_eq!(ordered_bell(3), 13);
        assert_eq!(ordered_bell(4), 75);
        assert_eq!(ordered_bell(5), 541);
    }

    #[test]
    fn one_round_facet_counts_match_ordered_bell() {
        for n in 1..=4 {
            let complex = protocol_complex(n, 1);
            assert_eq!(complex.facet_count(), ordered_bell(n), "n = {n}");
        }
    }

    #[test]
    fn two_round_facet_count_n2() {
        // χ²(Δ¹): the edge subdivided twice: 3² = 9 facets.
        let complex = protocol_complex(2, 2);
        assert_eq!(complex.facet_count(), 9);
    }

    #[test]
    fn zero_rounds_is_a_single_simplex() {
        let complex = protocol_complex(3, 0);
        assert_eq!(complex.facet_count(), 1);
        assert_eq!(complex.vertices().len(), 3);
    }

    #[test]
    fn subdivisions_are_pseudomanifolds() {
        for (n, r) in [(2usize, 1usize), (2, 2), (2, 3), (3, 1), (3, 2), (4, 1)] {
            let complex = protocol_complex(n, r);
            assert!(complex.is_pseudomanifold(), "χ^{r}(Δ^{}) n={n}", n - 1);
            assert!(complex.is_strongly_connected(), "χ^{r} n={n}");
        }
    }

    #[test]
    fn boundary_of_subdivided_edge() {
        // χ(Δ¹) is a path: exactly 2 boundary vertices (the corners).
        let complex = protocol_complex(2, 1);
        assert_eq!(complex.boundary_ridge_count(), 2);
        // χ(Δ²)'s boundary is the subdivided triangle boundary: each of
        // the 3 edges of Δ² is subdivided into a path of 3 edges → 9
        // boundary ridges.
        let complex = protocol_complex(3, 1);
        assert_eq!(complex.boundary_ridge_count(), 9);
    }

    #[test]
    fn vertex_views_have_expected_depth() {
        let complex = protocol_complex(3, 2);
        for v in complex.vertices() {
            assert_eq!(v.view.depth(), 2);
            assert_eq!(v.view.id(), v.color);
        }
    }

    #[test]
    fn solo_corner_exists_per_color() {
        // In χ(Δ²) each color has a corner vertex seeing only itself.
        let complex = protocol_complex(3, 1);
        for color in 1..=3u32 {
            let solo = View::one_round(color, &[color]);
            assert!(
                complex
                    .vertices()
                    .iter()
                    .any(|v| v.color == color && v.view == solo),
                "missing solo corner for color {color}"
            );
        }
    }
}
