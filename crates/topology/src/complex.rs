//! Chromatic simplicial complexes in facet representation.
//!
//! The protocol complexes of wait-free computability theory are *chromatic*
//! (pure, properly colored) simplicial complexes: every facet has exactly
//! one vertex per process. This module provides the shared container used
//! by the subdivision builder and the solvability checker, plus the
//! structural checks Theorem 11's proof leans on (pseudomanifoldness and
//! facet connectivity).

use std::collections::{BTreeSet, HashMap};

use crate::views::View;

/// Index of a vertex within a [`ChromaticComplex`].
pub type VertexId = usize;

/// A vertex: a process (color) together with its local view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Vertex {
    /// The process identity (color), in `[1..n]`.
    pub color: u32,
    /// The process's local state.
    pub view: View,
}

/// A pure, properly colored simplicial complex given by its facets.
///
/// Facets are stored as sorted vertex-id vectors of uniform dimension
/// `n − 1` (one vertex per color).
#[derive(Debug, Clone)]
pub struct ChromaticComplex {
    n: usize,
    vertices: Vec<Vertex>,
    index: HashMap<Vertex, VertexId>,
    facets: Vec<Vec<VertexId>>,
}

impl ChromaticComplex {
    /// Creates an empty complex over `n` colors.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ChromaticComplex {
            n,
            vertices: Vec::new(),
            index: HashMap::new(),
            facets: Vec::new(),
        }
    }

    /// Number of colors (processes).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Interns a vertex, returning its id (existing id if already present).
    pub fn intern(&mut self, vertex: Vertex) -> VertexId {
        if let Some(&id) = self.index.get(&vertex) {
            return id;
        }
        let id = self.vertices.len();
        self.vertices.push(vertex.clone());
        self.index.insert(vertex, id);
        id
    }

    /// Adds a facet from one vertex per color.
    ///
    /// # Panics
    ///
    /// Panics if the facet does not have exactly one vertex of each color
    /// `1..n` (chromatic purity).
    pub fn add_facet(&mut self, vertex_ids: Vec<VertexId>) {
        assert_eq!(vertex_ids.len(), self.n, "facet must have n vertices");
        let colors: BTreeSet<u32> = vertex_ids.iter().map(|&v| self.vertices[v].color).collect();
        assert_eq!(colors.len(), self.n, "facet colors must be distinct");
        let mut sorted = vertex_ids;
        sorted.sort_unstable();
        self.facets.push(sorted);
    }

    /// Deduplicates facets (subdivision builders may generate repeats).
    pub fn dedup_facets(&mut self) {
        self.facets.sort();
        self.facets.dedup();
    }

    /// All vertices.
    #[must_use]
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All facets (sorted vertex-id vectors).
    #[must_use]
    pub fn facets(&self) -> &[Vec<VertexId>] {
        &self.facets
    }

    /// Number of facets.
    #[must_use]
    pub fn facet_count(&self) -> usize {
        self.facets.len()
    }

    /// Whether every `(n−2)`-face lies in at most two facets, i.e. the
    /// complex is a pseudomanifold (with boundary). This is the structural
    /// property Theorem 11's proof invokes for IS protocol complexes.
    #[must_use]
    pub fn is_pseudomanifold(&self) -> bool {
        self.ridge_incidence().values().all(|&c| c <= 2)
    }

    /// The number of boundary ridges (`(n−2)`-faces in exactly one facet).
    #[must_use]
    pub fn boundary_ridge_count(&self) -> usize {
        self.ridge_incidence().values().filter(|&&c| c == 1).count()
    }

    /// Whether the facet graph (facets adjacent when sharing a ridge) is
    /// connected — the second ingredient of Theorem 11's argument.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        if self.facets.len() <= 1 {
            return true;
        }
        // Build ridge → facet incidence, then BFS over facets.
        let mut ridge_to_facets: HashMap<Vec<VertexId>, Vec<usize>> = HashMap::new();
        for (f, facet) in self.facets.iter().enumerate() {
            for skip in 0..facet.len() {
                let mut ridge = facet.clone();
                ridge.remove(skip);
                ridge_to_facets.entry(ridge).or_default().push(f);
            }
        }
        let mut seen = vec![false; self.facets.len()];
        let mut queue = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(f) = queue.pop() {
            let facet = &self.facets[f];
            for skip in 0..facet.len() {
                let mut ridge = facet.clone();
                ridge.remove(skip);
                if let Some(neighbours) = ridge_to_facets.get(&ridge) {
                    for &g in neighbours {
                        if !seen[g] {
                            seen[g] = true;
                            reached += 1;
                            queue.push(g);
                        }
                    }
                }
            }
        }
        reached == self.facets.len()
    }

    fn ridge_incidence(&self) -> HashMap<Vec<VertexId>, usize> {
        let mut counts: HashMap<Vec<VertexId>, usize> = HashMap::new();
        for facet in &self.facets {
            for skip in 0..facet.len() {
                let mut ridge = facet.clone();
                ridge.remove(skip);
                *counts.entry(ridge).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertex(color: u32, seen: &[u32]) -> Vertex {
        Vertex {
            color,
            view: View::one_round(color, seen),
        }
    }

    #[test]
    fn intern_deduplicates() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(1, &[1]));
        let d = c.intern(vertex(1, &[1, 2]));
        assert_eq!(a, b);
        assert_ne!(a, d);
        assert_eq!(c.vertices().len(), 2);
    }

    #[test]
    #[should_panic(expected = "colors must be distinct")]
    fn facets_must_be_properly_colored() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(1, &[1, 2]));
        c.add_facet(vec![a, b]);
    }

    #[test]
    fn a_path_of_two_triangles_is_a_pseudomanifold() {
        let mut c = ChromaticComplex::new(2);
        // 1-dimensional "triangles" (edges) sharing a vertex: three
        // vertices a—b—c where edges {a,b}, {b,c}.
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(2, &[1, 2]));
        let d = c.intern(vertex(1, &[1, 2]));
        c.add_facet(vec![a, b]);
        c.add_facet(vec![b, d]);
        assert!(c.is_pseudomanifold());
        assert!(c.is_strongly_connected());
        // Boundary: vertices a and d each in exactly one edge.
        assert_eq!(c.boundary_ridge_count(), 2);
    }

    #[test]
    fn disconnected_facets_detected() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(2, &[2]));
        let d = c.intern(vertex(1, &[1, 2]));
        let e = c.intern(vertex(2, &[1, 2]));
        c.add_facet(vec![a, b]);
        c.add_facet(vec![d, e]);
        assert!(!c.is_strongly_connected());
    }

    #[test]
    fn dedup_facets_removes_repeats() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(2, &[1, 2]));
        c.add_facet(vec![a, b]);
        c.add_facet(vec![b, a]);
        c.dedup_facets();
        assert_eq!(c.facet_count(), 1);
    }
}
