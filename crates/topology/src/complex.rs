//! Chromatic simplicial complexes in facet representation.
//!
//! The protocol complexes of wait-free computability theory are *chromatic*
//! (pure, properly colored) simplicial complexes: every facet has exactly
//! one vertex per process. This module provides the shared container used
//! by the subdivision builder and the solvability checker, plus the
//! structural checks Theorem 11's proof leans on (pseudomanifoldness and
//! facet connectivity).
//!
//! Vertex ids are dense `u32`s and facets are packed sorted id slices;
//! ridges ((n−2)-faces) key hash maps through [`RidgeKey`], an exact
//! `u128` bit-packing of up to four sorted ids, so the ridge-incidence
//! passes underlying the structural checks allocate nothing per ridge.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use crate::views::{View, ViewArena};

/// Index of a vertex within a [`ChromaticComplex`].
pub type VertexId = u32;

/// A vertex: a process (color) together with its local view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Vertex {
    /// The process identity (color), in `[1..n]`.
    pub color: u32,
    /// The process's local state.
    pub view: View,
}

/// Exact key of a ridge ((n−2)-face, a facet minus one vertex).
///
/// Vertex ids are 32-bit, so up to four sorted ids pack exactly into one
/// `u128` word; wider ridges (n > 5) fall back to the boxed id list.
/// Within one complex all ridges have the same length, so packed keys are
/// collision-free — this is an identity, not a lossy hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RidgeKey {
    /// Up to four sorted ids packed little-endian into one word.
    Packed(u128),
    /// Five or more ids, kept explicit.
    Wide(Box<[VertexId]>),
}

/// Builds the [`RidgeKey`] of `facet` with position `skip` removed.
#[must_use]
pub fn ridge_key(facet: &[VertexId], skip: usize) -> RidgeKey {
    let ids = facet
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != skip)
        .map(|(_, &v)| v);
    if facet.len() <= 5 {
        let mut packed = 0u128;
        for (slot, id) in ids.enumerate() {
            packed |= u128::from(id) << (32 * slot);
        }
        RidgeKey::Packed(packed)
    } else {
        RidgeKey::Wide(ids.collect())
    }
}

/// The quotient of a complex's vertex set by view order-isomorphism
/// ([`View::signature`]): the symmetry classes a comparison-based
/// decision map must be constant on.
#[derive(Debug, Clone)]
pub struct SignatureQuotient {
    /// Canonical signature of each class, in first-appearance order.
    pub classes: Vec<View>,
    /// Class index of each vertex.
    pub vertex_class: Vec<u32>,
}

/// A pure, properly colored simplicial complex given by its facets.
///
/// Facets are stored as packed sorted vertex-id slices of uniform
/// dimension `n − 1` (one vertex per color).
#[derive(Debug, Clone)]
pub struct ChromaticComplex {
    n: usize,
    vertices: Vec<Vertex>,
    index: HashMap<Vertex, VertexId>,
    /// Flat CSR facet storage: `n` sorted vertex ids per facet, no
    /// per-facet boxes (421,875 `χ³(Δ³)` facets are one allocation).
    facet_data: Vec<VertexId>,
    /// The signature quotient, computed lazily on first demand — or
    /// attached up front by the streaming subdivision builder, which
    /// tracks classes incrementally per round; either way
    /// [`ChromaticComplex::signature_quotient`] is a lookup afterwards.
    quotient: OnceLock<Arc<SignatureQuotient>>,
}

impl ChromaticComplex {
    /// Creates an empty complex over `n` colors.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ChromaticComplex {
            n,
            vertices: Vec::new(),
            index: HashMap::new(),
            facet_data: Vec::new(),
            quotient: OnceLock::new(),
        }
    }

    /// Number of colors (processes).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Interns a vertex, returning its id (existing id if already present).
    pub fn intern(&mut self, vertex: Vertex) -> VertexId {
        // The streaming builder appends via `push_vertex` without
        // maintaining the dedup index (its vertices are distinct by
        // construction); re-sync lazily if interning resumes afterwards.
        if self.index.len() != self.vertices.len() {
            self.index = self
                .vertices
                .iter()
                .enumerate()
                .map(|(id, v)| (v.clone(), id as VertexId))
                .collect();
        }
        if let Some(&id) = self.index.get(&vertex) {
            return id;
        }
        // A new vertex invalidates any computed quotient.
        self.quotient = OnceLock::new();
        let id = VertexId::try_from(self.vertices.len()).expect("vertex ids fit in u32");
        self.vertices.push(vertex.clone());
        self.index.insert(vertex, id);
        id
    }

    /// Pre-sizes the vertex and facet stores (the streaming builder
    /// knows both counts up front).
    pub(crate) fn reserve(&mut self, vertices: usize, facets: usize) {
        self.vertices.reserve(vertices);
        self.facet_data.reserve(facets * self.n);
    }

    /// Appends a vertex known to be new (the streaming builder's path:
    /// hash-consed view keys guarantee distinctness, so the dedup index
    /// is skipped — [`ChromaticComplex::intern`] rebuilds it lazily if
    /// ever needed again).
    pub(crate) fn push_vertex(&mut self, vertex: Vertex) -> VertexId {
        self.quotient = OnceLock::new();
        let id = VertexId::try_from(self.vertices.len()).expect("vertex ids fit in u32");
        self.vertices.push(vertex);
        id
    }

    /// Adds a facet from one vertex per color.
    ///
    /// # Panics
    ///
    /// Panics if the facet does not have exactly one vertex of each color
    /// `1..n` (chromatic purity).
    pub fn add_facet(&mut self, vertex_ids: Vec<VertexId>) {
        assert_eq!(vertex_ids.len(), self.n, "facet must have n vertices");
        let colors: BTreeSet<u32> = vertex_ids
            .iter()
            .map(|&v| self.vertices[v as usize].color)
            .collect();
        assert_eq!(colors.len(), self.n, "facet colors must be distinct");
        let mut sorted = vertex_ids;
        sorted.sort_unstable();
        self.facet_data.extend_from_slice(&sorted);
    }

    /// Appends a facet from one **sorted** vertex-id slice whose proper
    /// coloring the caller guarantees (the streaming builder emits one
    /// vertex per color by construction; checked in debug builds).
    pub(crate) fn push_facet_sorted(&mut self, vertex_ids: &[VertexId]) {
        debug_assert_eq!(vertex_ids.len(), self.n, "facet must have n vertices");
        debug_assert!(vertex_ids.windows(2).all(|w| w[0] < w[1]), "sorted ids");
        debug_assert_eq!(
            vertex_ids
                .iter()
                .map(|&v| self.vertices[v as usize].color)
                .collect::<BTreeSet<u32>>()
                .len(),
            self.n,
            "facet colors must be distinct"
        );
        self.facet_data.extend_from_slice(vertex_ids);
    }

    /// Deduplicates facets (subdivision builders may generate repeats).
    pub fn dedup_facets(&mut self) {
        let n = self.n.max(1);
        let mut order: Vec<usize> = (0..self.facet_count()).collect();
        let data = &self.facet_data;
        order.sort_unstable_by(|&a, &b| data[a * n..a * n + n].cmp(&data[b * n..b * n + n]));
        order.dedup_by(|&mut a, &mut b| data[a * n..a * n + n] == data[b * n..b * n + n]);
        let mut deduped = Vec::with_capacity(order.len() * n);
        for f in order {
            deduped.extend_from_slice(&self.facet_data[f * n..f * n + n]);
        }
        self.facet_data = deduped;
    }

    /// All vertices.
    #[must_use]
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All facets, as packed sorted vertex-id slices over the flat CSR
    /// store.
    pub fn facets(&self) -> std::slice::ChunksExact<'_, VertexId> {
        self.facet_data.chunks_exact(self.n.max(1))
    }

    /// One facet's packed sorted vertex ids.
    #[must_use]
    pub fn facet(&self, f: usize) -> &[VertexId] {
        let n = self.n.max(1);
        &self.facet_data[f * n..f * n + n]
    }

    /// The flat facet store (`n` sorted ids per facet, concatenated) —
    /// for consumers that fan windows of facets out in parallel.
    #[must_use]
    pub fn facet_data(&self) -> &[VertexId] {
        &self.facet_data
    }

    /// Number of facets.
    #[must_use]
    pub fn facet_count(&self) -> usize {
        self.facet_data.len() / self.n.max(1)
    }

    /// Quotients the vertex set by view order-isomorphism, interning
    /// signatures once (each canonical [`View`] is materialized exactly
    /// once, when its class first appears) and indexing vertices by dense
    /// class id.
    ///
    /// The quotient is computed at most once per complex and shared
    /// behind an [`Arc`]: complexes from the streaming builder carry the
    /// classes tracked incrementally during construction, and any other
    /// complex memoizes the first computation — so the searches,
    /// replayable-witness checks, and benches that all quotient the same
    /// shared complex pay for it once.
    #[must_use]
    pub fn signature_quotient(&self) -> Arc<SignatureQuotient> {
        Arc::clone(
            self.quotient
                .get_or_init(|| Arc::new(self.compute_quotient())),
        )
    }

    /// Attaches a quotient computed during construction (the streaming
    /// builder's incremental class tracking). Must match what
    /// [`ChromaticComplex::signature_quotient`] would compute: one class
    /// entry per vertex, classes in first-appearance order.
    pub(crate) fn set_quotient(&mut self, quotient: SignatureQuotient) {
        debug_assert_eq!(quotient.vertex_class.len(), self.vertices.len());
        self.quotient = OnceLock::from(Arc::new(quotient));
    }

    fn compute_quotient(&self) -> SignatureQuotient {
        let mut arena = ViewArena::new();
        let mut class_of: HashMap<crate::views::ViewKey, u32> = HashMap::new();
        let mut classes: Vec<View> = Vec::new();
        let mut vertex_class: Vec<u32> = Vec::with_capacity(self.vertices.len());
        for vertex in &self.vertices {
            let key = arena.intern(&vertex.view);
            let sig = arena.signature(key);
            let class = match class_of.get(&sig) {
                Some(&c) => c,
                None => {
                    let c = u32::try_from(classes.len()).expect("classes fit in u32");
                    classes.push(arena.view(sig));
                    class_of.insert(sig, c);
                    c
                }
            };
            vertex_class.push(class);
        }
        SignatureQuotient {
            classes,
            vertex_class,
        }
    }

    /// Whether every `(n−2)`-face lies in at most two facets, i.e. the
    /// complex is a pseudomanifold (with boundary). This is the structural
    /// property Theorem 11's proof invokes for IS protocol complexes.
    #[must_use]
    pub fn is_pseudomanifold(&self) -> bool {
        self.ridge_incidence().values().all(|&c| c <= 2)
    }

    /// The number of boundary ridges (`(n−2)`-faces in exactly one facet).
    #[must_use]
    pub fn boundary_ridge_count(&self) -> usize {
        self.ridge_incidence().values().filter(|&&c| c == 1).count()
    }

    /// Whether the facet graph (facets adjacent when sharing a ridge) is
    /// connected — the second ingredient of Theorem 11's argument.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        let facet_count = self.facet_count();
        if facet_count <= 1 {
            return true;
        }
        // Build ridge → facet incidence, then BFS over facets.
        let mut ridge_to_facets: HashMap<RidgeKey, Vec<usize>> = HashMap::new();
        for (f, facet) in self.facets().enumerate() {
            for skip in 0..facet.len() {
                ridge_to_facets
                    .entry(ridge_key(facet, skip))
                    .or_default()
                    .push(f);
            }
        }
        let mut seen = vec![false; facet_count];
        let mut queue = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(f) = queue.pop() {
            let facet = self.facet(f);
            for skip in 0..facet.len() {
                if let Some(neighbours) = ridge_to_facets.get(&ridge_key(facet, skip)) {
                    for &g in neighbours {
                        if !seen[g] {
                            seen[g] = true;
                            reached += 1;
                            queue.push(g);
                        }
                    }
                }
            }
        }
        reached == facet_count
    }

    fn ridge_incidence(&self) -> HashMap<RidgeKey, usize> {
        let mut counts: HashMap<RidgeKey, usize> = HashMap::new();
        for facet in self.facets() {
            for skip in 0..facet.len() {
                *counts.entry(ridge_key(facet, skip)).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertex(color: u32, seen: &[u32]) -> Vertex {
        Vertex {
            color,
            view: View::one_round(color, seen),
        }
    }

    #[test]
    fn intern_deduplicates() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(1, &[1]));
        let d = c.intern(vertex(1, &[1, 2]));
        assert_eq!(a, b);
        assert_ne!(a, d);
        assert_eq!(c.vertices().len(), 2);
    }

    #[test]
    #[should_panic(expected = "colors must be distinct")]
    fn facets_must_be_properly_colored() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(1, &[1, 2]));
        c.add_facet(vec![a, b]);
    }

    #[test]
    fn a_path_of_two_triangles_is_a_pseudomanifold() {
        let mut c = ChromaticComplex::new(2);
        // 1-dimensional "triangles" (edges) sharing a vertex: three
        // vertices a—b—c where edges {a,b}, {b,c}.
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(2, &[1, 2]));
        let d = c.intern(vertex(1, &[1, 2]));
        c.add_facet(vec![a, b]);
        c.add_facet(vec![b, d]);
        assert!(c.is_pseudomanifold());
        assert!(c.is_strongly_connected());
        // Boundary: vertices a and d each in exactly one edge.
        assert_eq!(c.boundary_ridge_count(), 2);
    }

    #[test]
    fn disconnected_facets_detected() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(2, &[2]));
        let d = c.intern(vertex(1, &[1, 2]));
        let e = c.intern(vertex(2, &[1, 2]));
        c.add_facet(vec![a, b]);
        c.add_facet(vec![d, e]);
        assert!(!c.is_strongly_connected());
    }

    #[test]
    fn dedup_facets_removes_repeats() {
        let mut c = ChromaticComplex::new(2);
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(2, &[1, 2]));
        c.add_facet(vec![a, b]);
        c.add_facet(vec![b, a]);
        c.dedup_facets();
        assert_eq!(c.facet_count(), 1);
    }

    #[test]
    fn ridge_keys_are_exact() {
        // Same multiset of ids → same key; different ids → different key.
        let facet_a = [3u32, 7, 9];
        let facet_b = [3u32, 7, 11];
        assert_eq!(ridge_key(&facet_a, 2), ridge_key(&facet_b, 2));
        assert_ne!(ridge_key(&facet_a, 0), ridge_key(&facet_a, 1));
        assert_ne!(ridge_key(&facet_a, 1), ridge_key(&facet_b, 1));
        // Wide facets (n > 5) fall back to explicit ids, still exact.
        let wide: Vec<u32> = (1..=7).collect();
        assert_eq!(ridge_key(&wide, 6), ridge_key(&wide, 6));
        assert_ne!(ridge_key(&wide, 0), ridge_key(&wide, 6));
        assert!(matches!(ridge_key(&wide, 0), RidgeKey::Wide(_)));
        assert!(matches!(ridge_key(&facet_a, 0), RidgeKey::Packed(_)));
    }

    #[test]
    fn signature_quotient_groups_isomorphic_views() {
        let mut c = ChromaticComplex::new(2);
        // Both solo corners are order-isomorphic; the two "saw both"
        // vertices split by own rank.
        let a = c.intern(vertex(1, &[1]));
        let b = c.intern(vertex(2, &[2]));
        let d = c.intern(vertex(1, &[1, 2]));
        let e = c.intern(vertex(2, &[1, 2]));
        let q = c.signature_quotient();
        assert_eq!(q.vertex_class.len(), 4);
        assert_eq!(q.vertex_class[a as usize], q.vertex_class[b as usize]);
        assert_ne!(q.vertex_class[d as usize], q.vertex_class[e as usize]);
        assert_eq!(q.classes.len(), 3);
        for (v, &class) in q.vertex_class.iter().enumerate() {
            assert_eq!(
                q.classes[class as usize],
                c.vertices()[v].view.signature(),
                "vertex {v}"
            );
        }
    }
}
