//! Process views in iterated immediate snapshot (IIS) executions, and
//! their order-type canonicalization.
//!
//! A comparison-based algorithm cannot distinguish two local states whose
//! identity content is *order-isomorphic* (Section 2.2); the decision map
//! of any such algorithm is therefore constant on order-isomorphism
//! classes of views. [`View::signature`] computes a canonical form —
//! identities relabelled `1..k` preserving order, recursively — so that
//! two views get equal signatures iff they are order-isomorphic.

use std::collections::{BTreeSet, HashMap};

/// The local state (view) of a process after some IIS rounds.
///
/// Identities are abstract positive integers; only their relative order is
/// meaningful (the solvability checker fixes them to `1..n`, justified by
/// Theorem 2).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum View {
    /// Initial state: the process knows only its own identity.
    Initial {
        /// The process's identity.
        id: u32,
    },
    /// State after one more IS round: the process saw the previous-round
    /// views of a set of processes (always including itself).
    Round {
        /// The observing process's identity.
        id: u32,
        /// `(identity, previous view)` for every process seen, sorted by
        /// identity.
        seen: Vec<(u32, View)>,
    },
}

impl View {
    /// The identity of the process holding this view.
    #[must_use]
    pub fn id(&self) -> u32 {
        match self {
            View::Initial { id } | View::Round { id, .. } => *id,
        }
    }

    /// The set of identities occurring anywhere in the view.
    #[must_use]
    pub fn id_support(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        self.collect_ids(&mut out);
        out
    }

    fn collect_ids(&self, out: &mut BTreeSet<u32>) {
        match self {
            View::Initial { id } => {
                out.insert(*id);
            }
            View::Round { id, seen } => {
                out.insert(*id);
                for (q, view) in seen {
                    out.insert(*q);
                    view.collect_ids(out);
                }
            }
        }
    }

    /// Rewrites every identity through `relabel` (an order-preserving map
    /// is supplied by [`View::signature`]).
    fn relabelled(&self, relabel: &dyn Fn(u32) -> u32) -> View {
        match self {
            View::Initial { id } => View::Initial { id: relabel(*id) },
            View::Round { id, seen } => View::Round {
                id: relabel(*id),
                seen: seen
                    .iter()
                    .map(|(q, v)| (relabel(*q), v.relabelled(relabel)))
                    .collect(),
            },
        }
    }

    /// The canonical order-type signature: identities relabelled to
    /// `1..k` by rank within [`View::id_support`]. Two views are
    /// order-isomorphic — indistinguishable to a comparison-based
    /// process — iff their signatures are equal.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_topology::View;
    ///
    /// // Seeing {2,5} with own id 2 ≅ seeing {1,4} with own id 1…
    /// let a = View::one_round(2, &[2, 5]);
    /// let b = View::one_round(1, &[1, 4]);
    /// assert_eq!(a.signature(), b.signature());
    /// // …but not ≅ seeing {1,4} with own id 4.
    /// let c = View::one_round(4, &[1, 4]);
    /// assert_ne!(a.signature(), c.signature());
    /// ```
    #[must_use]
    pub fn signature(&self) -> View {
        let support: Vec<u32> = self.id_support().into_iter().collect();
        let relabel = |id: u32| -> u32 {
            (support
                .binary_search(&id)
                .expect("id is in its own support") as u32)
                + 1
        };
        self.relabelled(&relabel)
    }

    /// The canonical signature of this view with the identity *order
    /// reversed* (largest ↔ smallest).
    ///
    /// Order-reversal normalizes order-isomorphism: if `v ≅ w` then
    /// `rev(v) ≅ rev(w)` (conjugating an order-preserving support
    /// bijection by two reversals is again order-preserving), so this
    /// descends to a well-defined involution on signature classes — the
    /// one nontrivial view-signature symmetry the comparison-based
    /// quotient retains from the `S_n` relabelling group. The solver uses
    /// it (after re-verifying facet invariance) for orbit learning.
    #[must_use]
    pub fn reversed_signature(&self) -> View {
        fn reverse(view: &View, s: u32) -> View {
            match view {
                View::Initial { id } => View::Initial { id: s + 1 - id },
                View::Round { id, seen } => {
                    let mut seen: Vec<(u32, View)> = seen
                        .iter()
                        .map(|(q, inner)| (s + 1 - q, reverse(inner, s)))
                        .collect();
                    seen.sort();
                    View::Round {
                        id: s + 1 - id,
                        seen,
                    }
                }
            }
        }
        let signature = self.signature();
        let s = signature.id_support().len() as u32;
        // A signature's support is exactly 1..=s, so id ↦ s+1−id is a
        // bijection on it; seen-lists are re-sorted on the way.
        reverse(&signature, s).signature()
    }

    /// Convenience constructor for a one-round view: process `id` saw the
    /// initial states of `seen_ids` (must contain `id`).
    ///
    /// # Panics
    ///
    /// Panics if `seen_ids` does not contain `id`.
    #[must_use]
    pub fn one_round(id: u32, seen_ids: &[u32]) -> View {
        assert!(seen_ids.contains(&id), "a process always sees itself");
        let mut seen: Vec<(u32, View)> = seen_ids
            .iter()
            .map(|&q| (q, View::Initial { id: q }))
            .collect();
        seen.sort();
        View::Round { id, seen }
    }

    /// Number of rounds this view has been through.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            View::Initial { .. } => 0,
            View::Round { seen, .. } => 1 + seen.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
        }
    }
}

/// Handle to a view interned in a [`ViewArena`].
///
/// Keys are dense `u32` indices: equality of keys from the same arena is
/// equality of views, so the subdivision builder and the solvability
/// front-end compare and hash views in O(1) instead of walking the
/// recursive [`View`] tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewKey(u32);

impl ViewKey {
    /// The dense arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned view: the observer's identity plus what it saw, as keys.
/// An empty `seen` encodes [`View::Initial`]; a [`View::Round`] always
/// sees at least itself, so the encoding is unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ViewNode {
    id: u32,
    seen: Box<[(u32, ViewKey)]>,
}

/// A hash-consing arena for [`View`]s.
///
/// Structurally equal views share one `u32` key, nested views share
/// subtrees, and canonical signatures ([`View::signature`]) are memoized
/// per key — the subdivision builder interns each round's views instead
/// of deep-cloning recursive trees, and the solvability front-end maps
/// vertices to symmetry classes by key without re-hashing whole views.
#[derive(Debug, Default)]
pub struct ViewArena {
    nodes: Vec<ViewNode>,
    index: HashMap<ViewNode, ViewKey>,
    signatures: HashMap<ViewKey, ViewKey>,
}

impl ViewArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct views interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn intern_node(&mut self, node: ViewNode) -> ViewKey {
        if let Some(&key) = self.index.get(&node) {
            return key;
        }
        let key = ViewKey(u32::try_from(self.nodes.len()).expect("arena fits in u32"));
        self.nodes.push(node.clone());
        self.index.insert(node, key);
        key
    }

    /// Interns the initial view of process `id`.
    pub fn initial(&mut self, id: u32) -> ViewKey {
        self.intern_node(ViewNode {
            id,
            seen: Box::new([]),
        })
    }

    /// Interns a one-more-round view: process `id` saw `seen`
    /// (`(identity, previous view)` pairs; sorted here, must be
    /// non-empty — a process always sees itself).
    ///
    /// # Panics
    ///
    /// Panics if `seen` is empty.
    pub fn round(&mut self, id: u32, mut seen: Vec<(u32, ViewKey)>) -> ViewKey {
        assert!(!seen.is_empty(), "a process always sees itself");
        seen.sort_unstable();
        self.intern_node(ViewNode {
            id,
            seen: seen.into_boxed_slice(),
        })
    }

    /// Interns a recursive [`View`], sharing any subtrees already present.
    pub fn intern(&mut self, view: &View) -> ViewKey {
        match view {
            View::Initial { id } => self.initial(*id),
            View::Round { id, seen } => {
                let seen_keys: Vec<(u32, ViewKey)> = seen
                    .iter()
                    .map(|(q, inner)| (*q, self.intern(inner)))
                    .collect();
                self.round(*id, seen_keys)
            }
        }
    }

    /// Materializes the recursive [`View`] behind `key`.
    #[must_use]
    pub fn view(&self, key: ViewKey) -> View {
        let node = &self.nodes[key.index()];
        if node.seen.is_empty() {
            View::Initial { id: node.id }
        } else {
            View::Round {
                id: node.id,
                seen: node
                    .seen
                    .iter()
                    .map(|&(q, inner)| (q, self.view(inner)))
                    .collect(),
            }
        }
    }

    /// The identity of the process holding view `key`.
    #[must_use]
    pub fn id(&self, key: ViewKey) -> u32 {
        self.nodes[key.index()].id
    }

    fn collect_support(&self, key: ViewKey, out: &mut BTreeSet<u32>) {
        let node = &self.nodes[key.index()];
        out.insert(node.id);
        for &(q, inner) in node.seen.iter() {
            out.insert(q);
            self.collect_support(inner, out);
        }
    }

    fn relabel(&mut self, key: ViewKey, map: &HashMap<u32, u32>) -> ViewKey {
        let node = self.nodes[key.index()].clone();
        let seen: Vec<(u32, ViewKey)> = node
            .seen
            .iter()
            .map(|&(q, inner)| (map[&q], self.relabel(inner, map)))
            .collect();
        if seen.is_empty() {
            self.initial(map[&node.id])
        } else {
            self.round(map[&node.id], seen)
        }
    }

    /// The canonical order-type signature of `key`, as a key — identities
    /// relabelled to `1..k` by rank within the support, exactly like
    /// [`View::signature`], but memoized per interned view.
    pub fn signature(&mut self, key: ViewKey) -> ViewKey {
        if let Some(&sig) = self.signatures.get(&key) {
            return sig;
        }
        let mut support = BTreeSet::new();
        self.collect_support(key, &mut support);
        let map: HashMap<u32, u32> = support
            .into_iter()
            .enumerate()
            .map(|(rank, id)| (id, rank as u32 + 1))
            .collect();
        let sig = self.relabel(key, &map);
        self.signatures.insert(key, sig);
        sig
    }
}

/// All *ordered partitions* (sequences of disjoint non-empty blocks
/// covering `items`) — the combinatorial skeleton of one-round IS
/// executions: processes in earlier blocks are seen by later blocks.
///
/// The count is the ordered Bell number: 1, 1, 3, 13, 75, 541, … for
/// `|items|` = 0, 1, 2, 3, 4, 5.
///
/// # Examples
///
/// ```
/// use gsb_topology::views::ordered_partitions;
///
/// assert_eq!(ordered_partitions(&[1, 2]).len(), 3);
/// assert_eq!(ordered_partitions(&[1, 2, 3]).len(), 13);
/// ```
#[must_use]
pub fn ordered_partitions(items: &[u32]) -> Vec<Vec<Vec<u32>>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    // Choose each non-empty subset as the first block (bitmask), recurse.
    let n = items.len();
    for mask in 1u32..(1 << n) {
        let mut block = Vec::new();
        let mut rest = Vec::new();
        for (i, &item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                block.push(item);
            } else {
                rest.push(item);
            }
        }
        for mut tail in ordered_partitions(&rest) {
            let mut partition = vec![block.clone()];
            partition.append(&mut tail);
            out.push(partition);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_partition_counts_are_fubini_numbers() {
        assert_eq!(ordered_partitions(&[]).len(), 1);
        assert_eq!(ordered_partitions(&[1]).len(), 1);
        assert_eq!(ordered_partitions(&[1, 2]).len(), 3);
        assert_eq!(ordered_partitions(&[1, 2, 3]).len(), 13);
        assert_eq!(ordered_partitions(&[1, 2, 3, 4]).len(), 75);
    }

    #[test]
    fn ordered_partitions_cover_and_are_disjoint() {
        for partition in ordered_partitions(&[1, 2, 3]) {
            let mut all: Vec<u32> = partition.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![1, 2, 3]);
            assert!(partition.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn signatures_identify_order_isomorphic_views() {
        // Solo views are all isomorphic regardless of id.
        let solo_a = View::one_round(3, &[3]);
        let solo_b = View::one_round(7, &[7]);
        assert_eq!(solo_a.signature(), solo_b.signature());

        // Own-rank-within-seen matters.
        let low = View::one_round(1, &[1, 5]);
        let high = View::one_round(5, &[1, 5]);
        assert_ne!(low.signature(), high.signature());

        // Size matters.
        let pair = View::one_round(1, &[1, 2]);
        let triple = View::one_round(1, &[1, 2, 3]);
        assert_ne!(pair.signature(), triple.signature());
    }

    #[test]
    fn signature_is_idempotent() {
        let v = View::one_round(4, &[2, 4, 9]);
        assert_eq!(v.signature(), v.signature().signature());
    }

    #[test]
    fn nested_views_canonicalize_recursively() {
        // p3 saw p1's solo view in round 2; relabelling must reach inside.
        let inner_a = View::one_round(1, &[1]);
        let outer_a = View::Round {
            id: 3,
            seen: vec![(1, inner_a.clone()), (3, View::one_round(3, &[1, 3]))],
        };
        let inner_b = View::one_round(2, &[2]);
        let outer_b = View::Round {
            id: 9,
            seen: vec![(2, inner_b.clone()), (9, View::one_round(9, &[2, 9]))],
        };
        assert_eq!(outer_a.signature(), outer_b.signature());
    }

    #[test]
    fn depth_counts_rounds() {
        assert_eq!(View::Initial { id: 1 }.depth(), 0);
        assert_eq!(View::one_round(1, &[1, 2]).depth(), 1);
        let nested = View::Round {
            id: 1,
            seen: vec![(1, View::one_round(1, &[1]))],
        };
        assert_eq!(nested.depth(), 2);
    }

    #[test]
    fn reversed_signature_is_an_involution_swapping_ranks() {
        // "Self low of a pair" ↔ "self high of a pair".
        let low = View::one_round(1, &[1, 5]).signature();
        let high = View::one_round(5, &[1, 5]).signature();
        assert_eq!(low.reversed_signature(), high);
        assert_eq!(high.reversed_signature(), low);
        // Involution on a deeper view.
        let nested = View::Round {
            id: 3,
            seen: vec![
                (1, View::one_round(1, &[1])),
                (3, View::one_round(3, &[1, 3])),
            ],
        };
        let rev = nested.reversed_signature();
        assert_eq!(rev.reversed_signature(), nested.signature());
        // Solo views are rank-symmetric: fixed by reversal.
        let solo = View::one_round(4, &[4]);
        assert_eq!(solo.reversed_signature(), solo.signature());
    }

    #[test]
    fn arena_interning_matches_structural_equality() {
        let mut arena = ViewArena::new();
        let a = arena.intern(&View::one_round(2, &[2, 5]));
        let b = arena.intern(&View::one_round(2, &[2, 5]));
        let c = arena.intern(&View::one_round(2, &[2, 4]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.view(a), View::one_round(2, &[2, 5]));
    }

    #[test]
    fn arena_signature_agrees_with_view_signature() {
        let mut arena = ViewArena::new();
        let views = [
            View::one_round(2, &[2, 5]),
            View::one_round(1, &[1, 4]),
            View::one_round(4, &[1, 4]),
            View::Round {
                id: 9,
                seen: vec![
                    (2, View::one_round(2, &[2])),
                    (9, View::one_round(9, &[2, 9])),
                ],
            },
        ];
        for view in &views {
            let key = arena.intern(view);
            let sig = arena.signature(key);
            assert_eq!(arena.view(sig), view.signature(), "{view:?}");
            // Memoized: second call is the same key.
            assert_eq!(arena.signature(key), sig);
        }
        // Order-isomorphic views share one signature key.
        let a = arena.intern(&views[0]);
        let b = arena.intern(&views[1]);
        assert_eq!(arena.signature(a), arena.signature(b));
    }

    #[test]
    fn arena_round_trip_preserves_nested_views() {
        let mut arena = ViewArena::new();
        let nested = View::Round {
            id: 3,
            seen: vec![
                (1, View::one_round(1, &[1])),
                (3, View::one_round(3, &[1, 3])),
            ],
        };
        let key = arena.intern(&nested);
        assert_eq!(arena.view(key), nested);
        assert_eq!(arena.id(key), 3);
    }

    #[test]
    fn id_support_collects_nested_ids() {
        let nested = View::Round {
            id: 5,
            seen: vec![
                (2, View::one_round(2, &[2, 7])),
                (5, View::Initial { id: 5 }),
            ],
        };
        let support: Vec<u32> = nested.id_support().into_iter().collect();
        assert_eq!(support, vec![2, 5, 7]);
    }
}
