//! Process views in iterated immediate snapshot (IIS) executions, and
//! their order-type canonicalization.
//!
//! A comparison-based algorithm cannot distinguish two local states whose
//! identity content is *order-isomorphic* (Section 2.2); the decision map
//! of any such algorithm is therefore constant on order-isomorphism
//! classes of views. [`View::signature`] computes a canonical form —
//! identities relabelled `1..k` preserving order, recursively — so that
//! two views get equal signatures iff they are order-isomorphic.

use std::collections::{BTreeSet, HashMap, HashSet};

/// The local state (view) of a process after some IIS rounds.
///
/// Identities are abstract positive integers; only their relative order is
/// meaningful (the solvability checker fixes them to `1..n`, justified by
/// Theorem 2).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum View {
    /// Initial state: the process knows only its own identity.
    Initial {
        /// The process's identity.
        id: u32,
    },
    /// State after one more IS round: the process saw the previous-round
    /// views of a set of processes (always including itself).
    Round {
        /// The observing process's identity.
        id: u32,
        /// `(identity, previous view)` for every process seen, sorted by
        /// identity.
        seen: Vec<(u32, View)>,
    },
}

impl View {
    /// The identity of the process holding this view.
    #[must_use]
    pub fn id(&self) -> u32 {
        match self {
            View::Initial { id } | View::Round { id, .. } => *id,
        }
    }

    /// The set of identities occurring anywhere in the view.
    #[must_use]
    pub fn id_support(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        self.collect_ids(&mut out);
        out
    }

    fn collect_ids(&self, out: &mut BTreeSet<u32>) {
        match self {
            View::Initial { id } => {
                out.insert(*id);
            }
            View::Round { id, seen } => {
                out.insert(*id);
                for (q, view) in seen {
                    out.insert(*q);
                    view.collect_ids(out);
                }
            }
        }
    }

    /// Rewrites every identity through `relabel` (an order-preserving map
    /// is supplied by [`View::signature`]).
    fn relabelled(&self, relabel: &dyn Fn(u32) -> u32) -> View {
        match self {
            View::Initial { id } => View::Initial { id: relabel(*id) },
            View::Round { id, seen } => View::Round {
                id: relabel(*id),
                seen: seen
                    .iter()
                    .map(|(q, v)| (relabel(*q), v.relabelled(relabel)))
                    .collect(),
            },
        }
    }

    /// The canonical order-type signature: identities relabelled to
    /// `1..k` by rank within [`View::id_support`]. Two views are
    /// order-isomorphic — indistinguishable to a comparison-based
    /// process — iff their signatures are equal.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_topology::View;
    ///
    /// // Seeing {2,5} with own id 2 ≅ seeing {1,4} with own id 1…
    /// let a = View::one_round(2, &[2, 5]);
    /// let b = View::one_round(1, &[1, 4]);
    /// assert_eq!(a.signature(), b.signature());
    /// // …but not ≅ seeing {1,4} with own id 4.
    /// let c = View::one_round(4, &[1, 4]);
    /// assert_ne!(a.signature(), c.signature());
    /// ```
    #[must_use]
    pub fn signature(&self) -> View {
        let support: Vec<u32> = self.id_support().into_iter().collect();
        let relabel = |id: u32| -> u32 {
            (support
                .binary_search(&id)
                .expect("id is in its own support") as u32)
                + 1
        };
        self.relabelled(&relabel)
    }

    /// The canonical signature of this view with the identity *order
    /// reversed* (largest ↔ smallest).
    ///
    /// Order-reversal normalizes order-isomorphism: if `v ≅ w` then
    /// `rev(v) ≅ rev(w)` (conjugating an order-preserving support
    /// bijection by two reversals is again order-preserving), so this
    /// descends to a well-defined involution on signature classes — the
    /// one nontrivial view-signature symmetry the comparison-based
    /// quotient retains from the `S_n` relabelling group. The solver uses
    /// it (after re-verifying facet invariance) for orbit learning.
    #[must_use]
    pub fn reversed_signature(&self) -> View {
        fn reverse(view: &View, s: u32) -> View {
            match view {
                View::Initial { id } => View::Initial { id: s + 1 - id },
                View::Round { id, seen } => {
                    let mut seen: Vec<(u32, View)> = seen
                        .iter()
                        .map(|(q, inner)| (s + 1 - q, reverse(inner, s)))
                        .collect();
                    seen.sort();
                    View::Round {
                        id: s + 1 - id,
                        seen,
                    }
                }
            }
        }
        let signature = self.signature();
        let s = signature.id_support().len() as u32;
        // A signature's support is exactly 1..=s, so id ↦ s+1−id is a
        // bijection on it; seen-lists are re-sorted on the way.
        reverse(&signature, s).signature()
    }

    /// Convenience constructor for a one-round view: process `id` saw the
    /// initial states of `seen_ids` (must contain `id`).
    ///
    /// # Panics
    ///
    /// Panics if `seen_ids` does not contain `id`.
    #[must_use]
    pub fn one_round(id: u32, seen_ids: &[u32]) -> View {
        assert!(seen_ids.contains(&id), "a process always sees itself");
        let mut seen: Vec<(u32, View)> = seen_ids
            .iter()
            .map(|&q| (q, View::Initial { id: q }))
            .collect();
        seen.sort();
        View::Round { id, seen }
    }

    /// Number of rounds this view has been through.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            View::Initial { .. } => 0,
            View::Round { seen, .. } => 1 + seen.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
        }
    }
}

/// Handle to a view interned in a [`ViewArena`].
///
/// Keys are dense `u32` indices: equality of keys from the same arena is
/// equality of views, so the subdivision builder and the solvability
/// front-end compare and hash views in O(1) instead of walking the
/// recursive [`View`] tree. Keys are issued in creation order, and a node
/// can only reference already-interned children — so ascending key order
/// is a topological order of the view DAG (children before parents), a
/// fact the iterative signature machinery leans on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewKey(u32);

impl ViewKey {
    /// The dense arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a key from a dense arena index (builder internals only:
    /// the index must have come from the same arena).
    pub(crate) fn from_index(index: usize) -> ViewKey {
        ViewKey(u32::try_from(index).expect("arena fits in u32"))
    }
}

/// One interned view: the observer's identity plus what it saw, as keys.
/// An empty `seen` encodes [`View::Initial`]; a [`View::Round`] always
/// sees at least itself, so the encoding is unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ViewNode {
    id: u32,
    seen: Box<[(u32, ViewKey)]>,
}

/// One multiply-xor mixing step (fxhash-style): fast enough for the
/// hot interning and dedup paths, where SipHash was a measurable cost.
/// Collisions are handled by content comparison everywhere, so hash
/// quality only affects probe lengths, never correctness.
#[inline]
pub(crate) fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Content hash of a view node (observer id plus seen list); the
/// streaming builder computes the same hash incrementally via
/// [`node_hash_seed`] and [`node_hash_pair`].
fn node_hash(id: u32, seen: &[(u32, ViewKey)]) -> u64 {
    let mut hash = node_hash_seed(id, seen.len());
    for &pair in seen {
        hash = node_hash_pair(hash, pair);
    }
    hash
}

/// Starts a node-content hash (observer id plus seen length).
#[inline]
pub(crate) fn node_hash_seed(id: u32, seen_len: usize) -> u64 {
    fx_mix(u64::from(id), seen_len as u64)
}

/// Folds one `(identity, previous view)` pair into a node-content hash.
#[inline]
pub(crate) fn node_hash_pair(hash: u64, (q, key): (u32, ViewKey)) -> u64 {
    fx_mix(hash, (u64::from(q) << 32) | u64::from(key.0))
}

/// A minimal open-addressing hash table mapping 64-bit content hashes to
/// `u32` payloads (arena keys, row offsets, …), with linear probing and
/// caller-supplied equality — the shared engine under the arena's
/// interning index, the streaming builder's frontier dedup, and the
/// signature relabel memo. Unlike `HashMap<u64, Vec<u32>>` buckets it
/// allocates nothing per entry; stored hashes make growth a plain
/// reinsertion sweep. No deletions.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProbeTable {
    /// `(content hash, payload)`; [`ProbeTable::EMPTY`] payload = free.
    slots: Box<[(u64, u32)]>,
    len: usize,
}

impl ProbeTable {
    const EMPTY: u32 = u32::MAX;

    /// A table pre-sized for about `capacity` entries.
    pub(crate) fn with_capacity(capacity: usize) -> ProbeTable {
        let slots = (capacity * 2).next_power_of_two().max(16);
        ProbeTable {
            slots: vec![(0, Self::EMPTY); slots].into_boxed_slice(),
            len: 0,
        }
    }

    #[inline]
    fn slot_of(hash: u64, mask: usize) -> usize {
        // The multiply mixes into the high bits; fold them down before
        // masking.
        (hash ^ (hash >> 32)) as usize & mask
    }

    /// Looks up the payload whose stored hash equals `hash` and for
    /// which `eq` confirms content equality.
    #[inline]
    pub(crate) fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = Self::slot_of(hash, mask);
        loop {
            let (stored, payload) = self.slots[slot];
            if payload == Self::EMPTY {
                return None;
            }
            if stored == hash && eq(payload) {
                return Some(payload);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts `payload` under `hash` (the caller has already ruled out
    /// a duplicate via [`ProbeTable::find`]).
    pub(crate) fn insert(&mut self, hash: u64, payload: u32) {
        debug_assert_ne!(payload, Self::EMPTY, "payload space is 0..u32::MAX-1");
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut slot = Self::slot_of(hash, mask);
        while self.slots[slot].1 != Self::EMPTY {
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = (hash, payload);
        self.len += 1;
    }

    fn grow(&mut self) {
        let capacity = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(
            &mut self.slots,
            vec![(0, Self::EMPTY); capacity].into_boxed_slice(),
        );
        let mask = capacity - 1;
        for (hash, payload) in old {
            if payload != Self::EMPTY {
                let mut slot = Self::slot_of(hash, mask);
                while self.slots[slot].1 != Self::EMPTY {
                    slot = (slot + 1) & mask;
                }
                self.slots[slot] = (hash, payload);
            }
        }
    }
}

/// A hash-consing arena for [`View`]s.
///
/// Structurally equal views share one `u32` key, nested views share
/// subtrees, and canonical signatures ([`View::signature`]) are memoized
/// per key — the subdivision builder interns each round's views instead
/// of deep-cloning recursive trees, and the solvability front-end maps
/// vertices to symmetry classes by key without re-hashing whole views.
///
/// Nodes are stored once; the lookup index is a [`ProbeTable`] mapping a
/// 64-bit content hash to keys, so probing for an existing view hashes a
/// scratch slice instead of allocating a candidate node
/// ([`ViewArena::round_from_slice`] is the zero-allocation hit path the
/// streaming subdivision builder stamps templates through).
///
/// Every node also carries its **identity-support bitmask** (ids `1..64`
/// as bits, maintained incrementally at intern time), which is what
/// makes [`ViewArena::signature`] cheap: the canonical relabelling of a
/// node under an order-preserving map is determined by the *image mask*
/// of its support, so relabel results are memoized globally per
/// `(key, image mask)` — shared sub-DAGs are relabelled once across all
/// signature computations, and an already-canonical node (support equal
/// to the image) returns itself without any walk. Views with identities
/// outside `1..64` fall back to an explicit-map walk (still per-call
/// memoized, so shared sub-DAGs stay linear).
#[derive(Debug, Default, Clone)]
pub struct ViewArena {
    nodes: Vec<ViewNode>,
    /// Identity-support bitmask per node (bit `i` ⟺ identity `i + 1`);
    /// `0` marks an identity outside `1..64` somewhere in the sub-DAG
    /// (the slow relabel path).
    support: Vec<u64>,
    /// Content-hash index over `nodes`.
    index: ProbeTable,
    /// Memoized canonical signature per key (`u32::MAX` = not yet
    /// computed), dense like the arena itself.
    signatures: Vec<u32>,
    /// Relabel memo: `(key, image mask) → relabelled key`, entries in
    /// `relabel_entries`, probed by hash.
    relabel_memo: ProbeTable,
    relabel_entries: Vec<(u32, u64, u32)>,
    /// Arbitrary-permutation memo: `(key, perm id) → permuted key`,
    /// entries in `perm_entries`, probed by hash. Backs
    /// [`ViewArena::permute`], the non-order-preserving relabel the
    /// orbit-quotient pipeline streams the `S_n` action through.
    perm_memo: ProbeTable,
    perm_entries: Vec<(u32, u32, u32)>,
}

/// The support bit of one identity (`0` = outside the mask domain).
#[inline]
fn support_bit(id: u32) -> u64 {
    if (1..=64).contains(&id) {
        1u64 << (id - 1)
    } else {
        0
    }
}

/// The identity that `id` maps to under the unique order-preserving
/// bijection from support mask `s` onto image mask `t`.
#[inline]
fn relabel_id(s: u64, t: u64, id: u32) -> u32 {
    let rank = (s & (support_bit(id) - 1)).count_ones();
    let mut rest = t;
    for _ in 0..rank {
        rest &= rest - 1;
    }
    rest.trailing_zeros() + 1
}

/// The image of sub-support `sub ⊆ s` under the order-preserving
/// bijection `s → t`.
#[inline]
fn image_mask(s: u64, t: u64, sub: u64) -> u64 {
    let mut out = 0u64;
    let mut rest = sub;
    while rest != 0 {
        let bit = rest & rest.wrapping_neg();
        out |= support_bit(relabel_id(s, t, bit.trailing_zeros() + 1));
        rest ^= bit;
    }
    out
}

impl ViewArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct views interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns the node `(id, seen)`; `seen` must already be sorted.
    /// Allocates only when the node is new.
    fn intern_slice(&mut self, id: u32, seen: &[(u32, ViewKey)]) -> ViewKey {
        let hash = node_hash(id, seen);
        self.intern_slice_hashed(id, seen, hash)
    }

    fn intern_slice_hashed(&mut self, id: u32, seen: &[(u32, ViewKey)], hash: u64) -> ViewKey {
        debug_assert!(seen.windows(2).all(|w| w[0] <= w[1]), "seen must be sorted");
        let nodes = &self.nodes;
        if let Some(existing) = self.index.find(hash, |key| {
            let node = &nodes[key as usize];
            node.id == id && *node.seen == *seen
        }) {
            return ViewKey(existing);
        }
        let key = ViewKey(u32::try_from(self.nodes.len()).expect("arena fits in u32"));
        // Incremental support: own id plus every seen id and sub-support;
        // any identity outside the mask domain poisons the whole mask.
        let mut mask = support_bit(id);
        if mask != 0 {
            for &(q, inner) in seen {
                let sub = self.support[inner.index()];
                if support_bit(q) == 0 || sub == 0 {
                    mask = 0;
                    break;
                }
                mask |= support_bit(q) | sub;
            }
        }
        self.nodes.push(ViewNode {
            id,
            seen: seen.into(),
        });
        self.support.push(mask);
        self.signatures.push(u32::MAX);
        self.index.insert(hash, key.0);
        key
    }

    /// Interns the initial view of process `id`.
    pub fn initial(&mut self, id: u32) -> ViewKey {
        self.intern_slice(id, &[])
    }

    /// Interns a one-more-round view: process `id` saw `seen`
    /// (`(identity, previous view)` pairs; sorted here, must be
    /// non-empty — a process always sees itself — with **distinct**
    /// identities, since one IS round shows each process at most once).
    ///
    /// # Panics
    ///
    /// Panics if `seen` is empty or repeats an identity (a repeated
    /// identity is a malformed view: the relabelling machinery relies on
    /// seen lists being strictly id-sorted).
    pub fn round(&mut self, id: u32, mut seen: Vec<(u32, ViewKey)>) -> ViewKey {
        assert!(!seen.is_empty(), "a process always sees itself");
        seen.sort_unstable();
        assert!(
            seen.windows(2).all(|w| w[0].0 < w[1].0),
            "a process is seen at most once per round"
        );
        self.intern_slice(id, &seen)
    }

    /// [`ViewArena::round`] without the owned argument: interns process
    /// `id`'s one-more-round view from an already **identity-sorted**
    /// scratch slice (distinct identities, like [`ViewArena::round`]),
    /// allocating nothing when the view exists. This is the hot path of
    /// the streaming subdivision builder, which stamps round templates
    /// through a reused scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `seen` is empty; sortedness and identity distinctness
    /// are debug-checked.
    pub fn round_from_slice(&mut self, id: u32, seen: &[(u32, ViewKey)]) -> ViewKey {
        assert!(!seen.is_empty(), "a process always sees itself");
        debug_assert!(
            seen.windows(2).all(|w| w[0].0 < w[1].0),
            "seen lists are strictly id-sorted"
        );
        self.intern_slice(id, seen)
    }

    /// [`ViewArena::round_from_slice`] with the content hash already
    /// computed (the builder folds hashing into its template scratch
    /// fill, saving one pass over `seen` per stamped view).
    pub(crate) fn round_prehashed(
        &mut self,
        id: u32,
        seen: &[(u32, ViewKey)],
        hash: u64,
    ) -> ViewKey {
        debug_assert!(!seen.is_empty(), "a process always sees itself");
        debug_assert_eq!(hash, node_hash(id, seen));
        self.intern_slice_hashed(id, seen, hash)
    }

    /// Interns a recursive [`View`], sharing any subtrees already present.
    pub fn intern(&mut self, view: &View) -> ViewKey {
        match view {
            View::Initial { id } => self.initial(*id),
            View::Round { id, seen } => {
                let seen_keys: Vec<(u32, ViewKey)> = seen
                    .iter()
                    .map(|(q, inner)| (*q, self.intern(inner)))
                    .collect();
                self.round(*id, seen_keys)
            }
        }
    }

    /// Materializes the recursive [`View`] behind `key`.
    #[must_use]
    pub fn view(&self, key: ViewKey) -> View {
        let node = &self.nodes[key.index()];
        if node.seen.is_empty() {
            View::Initial { id: node.id }
        } else {
            View::Round {
                id: node.id,
                seen: node
                    .seen
                    .iter()
                    .map(|&(q, inner)| (q, self.view(inner)))
                    .collect(),
            }
        }
    }

    /// The identity of the process holding view `key`.
    #[must_use]
    pub fn id(&self, key: ViewKey) -> u32 {
        self.nodes[key.index()].id
    }

    /// The keys of the sub-DAG reachable from `key` (including `key`),
    /// ascending — which is children-before-parents order, since a node
    /// can only reference already-interned keys. Iterative, and each
    /// shared subtree is visited once (the seed walked shared sub-DAGs
    /// once *per path*, which is exponential on hash-consed chains).
    fn reachable(&self, key: ViewKey) -> Vec<ViewKey> {
        let mut visited: HashSet<ViewKey> = HashSet::new();
        let mut stack = vec![key];
        visited.insert(key);
        while let Some(k) = stack.pop() {
            for &(_, inner) in self.nodes[k.index()].seen.iter() {
                if visited.insert(inner) {
                    stack.push(inner);
                }
            }
        }
        let mut keys: Vec<ViewKey> = visited.into_iter().collect();
        keys.sort_unstable();
        keys
    }

    fn collect_support(&self, key: ViewKey, out: &mut BTreeSet<u32>) {
        for k in self.reachable(key) {
            let node = &self.nodes[k.index()];
            out.insert(node.id);
            for &(q, _) in node.seen.iter() {
                out.insert(q);
            }
        }
    }

    /// Rewrites every identity of `key`'s view through `map`, interning
    /// the result. Iterative bottom-up over the reachable sub-DAG with a
    /// per-call memo, so shared subtrees are relabelled exactly once.
    /// `map` must be order-preserving on the support (seen lists stay
    /// sorted). This is the fallback for identities outside the support
    /// bitmask's `1..64` domain; in-domain views take the memoized
    /// [`ViewArena::relabel_masked`] path.
    fn relabel(&mut self, key: ViewKey, map: &HashMap<u32, u32>) -> ViewKey {
        let mut relabelled: HashMap<ViewKey, ViewKey> = HashMap::new();
        let mut scratch: Vec<(u32, ViewKey)> = Vec::new();
        for k in self.reachable(key) {
            let node = &self.nodes[k.index()];
            let id = map[&node.id];
            scratch.clear();
            scratch.extend(
                node.seen
                    .iter()
                    .map(|&(q, inner)| (map[&q], relabelled[&inner])),
            );
            debug_assert!(
                scratch.windows(2).all(|w| w[0] <= w[1]),
                "order-preserving relabel keeps seen lists sorted"
            );
            let image = if scratch.is_empty() {
                self.initial(id)
            } else {
                self.round_from_slice(id, &scratch)
            };
            relabelled.insert(k, image);
        }
        relabelled[&key]
    }

    /// Relabels `key` under the unique order-preserving bijection from
    /// its support mask onto `t_mask`, memoized globally per
    /// `(key, t_mask)` — so shared sub-DAGs are relabelled once *across*
    /// signature computations, and the identity case (`support ==
    /// t_mask`) is free. Recursion depth is the view depth; the memo
    /// keeps the walk linear in distinct `(node, image)` pairs.
    fn relabel_masked(&mut self, key: ViewKey, t_mask: u64) -> ViewKey {
        let s_mask = self.support[key.index()];
        debug_assert_eq!(s_mask.count_ones(), t_mask.count_ones());
        if s_mask == t_mask {
            return key;
        }
        let hash = fx_mix(u64::from(key.0), t_mask);
        let entries = &self.relabel_entries;
        if let Some(hit) = self.relabel_memo.find(hash, |entry| {
            let (k, t, _) = entries[entry as usize];
            k == key.0 && t == t_mask
        }) {
            return ViewKey(self.relabel_entries[hit as usize].2);
        }
        let node = self.nodes[key.index()].clone();
        let mut seen: Vec<(u32, ViewKey)> = Vec::with_capacity(node.seen.len());
        for &(q, inner) in node.seen.iter() {
            let inner_t = image_mask(s_mask, t_mask, self.support[inner.index()]);
            seen.push((
                relabel_id(s_mask, t_mask, q),
                self.relabel_masked(inner, inner_t),
            ));
        }
        let id = relabel_id(s_mask, t_mask, node.id);
        let image = if seen.is_empty() {
            self.initial(id)
        } else {
            debug_assert!(
                seen.windows(2).all(|w| w[0] <= w[1]),
                "order-preserving relabel keeps seen lists sorted"
            );
            self.round_from_slice(id, &seen)
        };
        let entry = u32::try_from(self.relabel_entries.len()).expect("memo fits in u32");
        self.relabel_entries.push((key.0, t_mask, image.0));
        self.relabel_memo.insert(hash, entry);
        image
    }

    /// Rewrites every identity of `key`'s view through the bijection
    /// `perm` (`perm[i]` = image of identity `i + 1`), re-sorting seen
    /// lists along the way — the **arbitrary-permutation** relabel
    /// behind the orbit-quotient pipeline. Unlike
    /// [`ViewArena::relabel_masked`], `perm` need not be
    /// order-preserving; every identity in the view must lie in
    /// `1..=perm.len()`.
    ///
    /// Memoized globally per `(key, perm_id)`; the caller guarantees
    /// `perm_id` stably identifies `perm` for this arena's lifetime
    /// (the builders index their fixed group enumeration). A
    /// permutation whose restriction to the view's support is
    /// order-preserving (the identity included) short-circuits through
    /// the mask-relabel memo, so orbit scans pay nothing for the group
    /// elements that fix a view's order type.
    pub(crate) fn permute(&mut self, key: ViewKey, perm: &[u32], perm_id: u32) -> ViewKey {
        let mask = self.support[key.index()];
        if mask != 0 {
            // Order-preserving on the support ⇒ the unique mask relabel.
            let mut image_mask = 0u64;
            let mut prev = 0u32;
            let mut monotone = true;
            let mut rest = mask;
            while rest != 0 {
                let id = rest.trailing_zeros() + 1;
                rest &= rest - 1;
                let to = perm[(id - 1) as usize];
                let bit = support_bit(to);
                if to <= prev || bit == 0 {
                    monotone = false;
                    break;
                }
                prev = to;
                image_mask |= bit;
            }
            if monotone {
                return self.relabel_masked(key, image_mask);
            }
        }
        let hash = fx_mix(u64::from(key.0), u64::from(perm_id));
        let entries = &self.perm_entries;
        if let Some(hit) = self.perm_memo.find(hash, |entry| {
            let (k, p, _) = entries[entry as usize];
            k == key.0 && p == perm_id
        }) {
            return ViewKey(self.perm_entries[hit as usize].2);
        }
        let node = self.nodes[key.index()].clone();
        let mut seen: Vec<(u32, ViewKey)> = node
            .seen
            .iter()
            .map(|&(q, inner)| (perm[(q - 1) as usize], self.permute(inner, perm, perm_id)))
            .collect();
        seen.sort_unstable();
        let id = perm[(node.id - 1) as usize];
        let image = if seen.is_empty() {
            self.initial(id)
        } else {
            self.round_from_slice(id, &seen)
        };
        let entry = u32::try_from(self.perm_entries.len()).expect("memo fits in u32");
        self.perm_entries.push((key.0, perm_id, image.0));
        self.perm_memo.insert(hash, entry);
        image
    }

    /// The keys reachable from any of `roots` (roots included),
    /// ascending — children before parents, the order bottom-up image
    /// assembly wants.
    pub(crate) fn reachable_closure(&self, roots: &[ViewKey]) -> Vec<ViewKey> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<ViewKey> = Vec::new();
        for &root in roots {
            if !visited[root.index()] {
                visited[root.index()] = true;
                stack.push(root);
            }
        }
        while let Some(k) = stack.pop() {
            for &(_, inner) in self.nodes[k.index()].seen.iter() {
                if !visited[inner.index()] {
                    visited[inner.index()] = true;
                    stack.push(inner);
                }
            }
        }
        visited
            .iter()
            .enumerate()
            .filter(|&(_, &seen)| seen)
            .map(|(i, _)| ViewKey::from_index(i))
            .collect()
    }

    /// Images of a whole sub-DAG under the bijection `perm`, assembled
    /// bottom-up: for every key of `closure` (ascending — children
    /// before parents, see [`ViewArena::reachable_closure`]),
    /// `column[key] = image key + 1`. Child images are dense array
    /// reads, so the only hashing left is one intern probe per node —
    /// the bulk form of [`ViewArena::permute`] the orbit pipeline's
    /// constraint expansion runs on.
    pub(crate) fn permute_column(
        &mut self,
        closure: &[ViewKey],
        perm: &[u32],
        column: &mut Vec<u32>,
    ) {
        if column.len() < self.nodes.len() {
            column.resize(self.nodes.len(), 0);
        }
        let mut scratch: Vec<(u32, ViewKey)> = Vec::new();
        for &key in closure {
            let id = {
                let node = &self.nodes[key.index()];
                scratch.clear();
                for &(q, child) in node.seen.iter() {
                    debug_assert_ne!(column[child.index()], 0, "children precede parents");
                    scratch.push((
                        perm[(q - 1) as usize],
                        ViewKey::from_index(column[child.index()] as usize - 1),
                    ));
                }
                perm[(node.id - 1) as usize]
            };
            scratch.sort_unstable();
            let image = if scratch.is_empty() {
                self.initial(id)
            } else {
                self.round_from_slice(id, &scratch)
            };
            column[key.index()] = u32::try_from(image.index() + 1).expect("arena fits in u32");
        }
    }

    /// Number of distinct identities in `key`'s view (the size of its
    /// [`View::id_support`]).
    pub(crate) fn support_len(&self, key: ViewKey) -> u32 {
        let mask = self.support[key.index()];
        if mask != 0 {
            mask.count_ones()
        } else {
            let mut support = BTreeSet::new();
            self.collect_support(key, &mut support);
            u32::try_from(support.len()).expect("support fits in u32")
        }
    }

    /// Compares the views behind two keys exactly as the derived
    /// [`Ord`] on materialized [`View`]s would — without materializing
    /// either (the pairwise reference that
    /// [`ViewArena::view_order_ranks`], the bulk form the pipelines
    /// actually use, is tested against).
    #[cfg(test)]
    pub(crate) fn cmp_views(&self, a: ViewKey, b: ViewKey) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        let (na, nb) = (&self.nodes[a.index()], &self.nodes[b.index()]);
        // `View`'s derived Ord: `Initial < Round`, then fields in
        // declaration order; `seen` compares element-wise (id first,
        // then the nested view), shorter prefix first.
        match (na.seen.is_empty(), nb.seen.is_empty()) {
            (true, true) => na.id.cmp(&nb.id),
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => na.id.cmp(&nb.id).then_with(|| {
                for (&(qa, ia), &(qb, ib)) in na.seen.iter().zip(nb.seen.iter()) {
                    let by_id = qa.cmp(&qb);
                    if by_id != Ordering::Equal {
                        return by_id;
                    }
                    let by_view = self.cmp_views(ia, ib);
                    if by_view != Ordering::Equal {
                        return by_view;
                    }
                }
                na.seen.len().cmp(&nb.seen.len())
            }),
        }
    }

    /// View-order ranks of **every** interned node: `ranks[a] <
    /// ranks[b]` iff the view behind key `a` precedes the view behind
    /// key `b` in the derived [`Ord`] on materialized [`View`]s. One
    /// bulk computation in linear passes — layered by view depth, each
    /// node compared through its children's already-assigned ranks —
    /// instead of `O(N log N)` recursive [`ViewArena::cmp_views`]
    /// walks; the orbit pipeline orders tens of thousands of signature
    /// classes through this in single-digit milliseconds.
    pub(crate) fn view_order_ranks(&self) -> Vec<u32> {
        let count = self.nodes.len();
        // Depth per node; children precede parents in key order.
        let mut depth = vec![0u32; count];
        let mut max_depth = 0u32;
        for i in 0..count {
            let d = self.nodes[i]
                .seen
                .iter()
                .map(|&(_, c)| depth[c.index()] + 1)
                .max()
                .unwrap_or(0);
            depth[i] = d;
            max_depth = max_depth.max(d);
        }
        // Grow a cumulative sorted order layer by layer. Children of a
        // depth-d node all have smaller depth, so their ranks are valid
        // when the layer is sorted; merging shifts positions but never
        // reorders already-placed nodes (rank comparisons are
        // order-isomorphic under the shift).
        let mut ranks = vec![0u32; count];
        let mut sorted: Vec<u32> = Vec::with_capacity(count);
        let mut by_depth: Vec<Vec<u32>> = vec![Vec::new(); max_depth as usize + 1];
        for (i, &d) in depth.iter().enumerate() {
            by_depth[d as usize].push(u32::try_from(i).expect("arena fits in u32"));
        }
        for mut layer in by_depth {
            layer.sort_unstable_by(|&a, &b| self.cmp_by_ranks(a, b, &ranks));
            let mut merged = Vec::with_capacity(sorted.len() + layer.len());
            let (mut i, mut j) = (0, 0);
            while i < sorted.len() && j < layer.len() {
                if self.cmp_by_ranks(sorted[i], layer[j], &ranks).is_lt() {
                    merged.push(sorted[i]);
                    i += 1;
                } else {
                    merged.push(layer[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&sorted[i..]);
            merged.extend_from_slice(&layer[j..]);
            sorted = merged;
            for (pos, &k) in sorted.iter().enumerate() {
                ranks[k as usize] = u32::try_from(pos).expect("arena fits in u32");
            }
        }
        ranks
    }

    /// [`ViewArena::cmp_views`] with child comparisons replaced by
    /// rank lookups (valid whenever both children's ranks are final).
    fn cmp_by_ranks(&self, a: u32, b: u32, ranks: &[u32]) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
        match (na.seen.is_empty(), nb.seen.is_empty()) {
            (true, true) => na.id.cmp(&nb.id),
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => na.id.cmp(&nb.id).then_with(|| {
                for (&(qa, ia), &(qb, ib)) in na.seen.iter().zip(nb.seen.iter()) {
                    let by_id = qa.cmp(&qb);
                    if by_id != Ordering::Equal {
                        return by_id;
                    }
                    let by_rank = ranks[ia.index()].cmp(&ranks[ib.index()]);
                    if by_rank != Ordering::Equal {
                        return by_rank;
                    }
                }
                na.seen.len().cmp(&nb.seen.len())
            }),
        }
    }

    /// The canonical order-type signature of `key`, as a key — identities
    /// relabelled to `1..k` by rank within the support, exactly like
    /// [`View::signature`], but memoized per interned view.
    pub fn signature(&mut self, key: ViewKey) -> ViewKey {
        let memo = self.signatures[key.index()];
        if memo != u32::MAX {
            return ViewKey(memo);
        }
        let mask = self.support[key.index()];
        let sig = if mask != 0 {
            let k = mask.count_ones();
            let canonical = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
            self.relabel_masked(key, canonical)
        } else {
            let mut support = BTreeSet::new();
            self.collect_support(key, &mut support);
            let map: HashMap<u32, u32> = support
                .into_iter()
                .enumerate()
                .map(|(rank, id)| (id, rank as u32 + 1))
                .collect();
            self.relabel(key, &map)
        };
        self.signatures[key.index()] = sig.0;
        sig
    }
}

/// One ordered partition of `{0..n}` in flat **round-template** form:
/// the per-process "sees prefix of length k" index maps the streaming
/// subdivision builder stamps facets through.
///
/// A process in block `B_j` of the ordered partition `(B_1, …, B_k)`
/// sees exactly `B_1 ∪ … ∪ B_j`. The template precomputes, for every
/// process index `p`, that union as a sorted slice of process indices —
/// so applying one immediate-snapshot round to a facet's view tuple is
/// pure index arithmetic: `next[p] = round(p + 1, [(q + 1, views[q]) for
/// q in seen_of(p)])`, with no per-process set construction, cloning, or
/// re-sorting.
///
/// Rows are stored concatenated CSR-style (`seen[offsets[p]..offsets[p +
/// 1]]`), one allocation pair per template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTemplate {
    /// Block index (position in the ordered partition, `0`-based) of
    /// each process index.
    block: Box<[u32]>,
    /// Concatenated sorted seen-lists, as `0`-based process indices.
    seen: Box<[u32]>,
    /// Row boundaries into `seen`; length `n + 1`.
    offsets: Box<[u32]>,
}

impl RoundTemplate {
    /// Builds the template of the ordered partition encoded by `block`
    /// (`block[q]` = index of the block containing process `q`; block
    /// indices must cover `0..=max` with no gaps).
    fn from_blocks(block: &[u32]) -> RoundTemplate {
        let n = block.len();
        let mut seen = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for p in 0..n {
            for q in 0..n {
                if block[q] <= block[p] {
                    seen.push(q as u32);
                }
            }
            offsets.push(u32::try_from(seen.len()).expect("template fits in u32"));
        }
        RoundTemplate {
            block: block.into(),
            seen: seen.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
        }
    }

    /// Number of processes the template schedules.
    #[must_use]
    pub fn n(&self) -> usize {
        self.block.len()
    }

    /// The sorted `0`-based process indices seen by process index `p`
    /// under this round's schedule (always contains `p`).
    #[must_use]
    pub fn seen_of(&self, p: usize) -> &[u32] {
        &self.seen[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// The raw block-assignment vector (`block[q]` = ordered-partition
    /// block index of process index `q`) — the orbit pipeline keys its
    /// template-permutation table on it.
    pub(crate) fn block_assignment(&self) -> &[u32] {
        &self.block
    }

    /// The ordered partition as explicit blocks of the given `items`
    /// (`items[q]` replaces process index `q`) — the adapter behind the
    /// retained [`ordered_partitions`] API.
    #[must_use]
    pub fn blocks(&self, items: &[u32]) -> Vec<Vec<u32>> {
        assert_eq!(items.len(), self.block.len(), "one item per process");
        let k = self.block.iter().max().map_or(0, |&b| b as usize + 1);
        let mut blocks = vec![Vec::new(); k];
        for (q, &b) in self.block.iter().enumerate() {
            blocks[b as usize].push(items[q]);
        }
        blocks
    }
}

/// All one-round immediate-snapshot schedules of `n` processes, as flat
/// [`RoundTemplate`]s — the ordered Bell number of them (1, 1, 3, 13,
/// 75, 541, 4683, … for `n` = 0, 1, 2, 3, 4, 5, 6).
///
/// The generator is **iterative** (the seed recursed over first-block
/// bitmasks, allocating intermediate partition vectors at every level):
/// an odometer sweeps block-assignment vectors `a ∈ {0..n−1}ⁿ` in
/// lexicographic order and keeps exactly the surjective ones (`a`'s
/// image is `{0..max}` with no gaps), each of which encodes one ordered
/// partition. The scan is `O(nⁿ)` against `fubini(n)` outputs — a
/// constant-factor overhead (< 10×) on the `n ≤ 6` domain the builders
/// operate in, with no recursion and no intermediate allocation.
#[must_use]
pub fn round_templates(n: usize) -> Vec<RoundTemplate> {
    if n == 0 {
        return vec![RoundTemplate::from_blocks(&[])];
    }
    let mut out = Vec::new();
    let mut assignment = vec![0u32; n];
    loop {
        // Keep surjective assignments: every block index up to the max
        // must be inhabited.
        let max = *assignment.iter().max().expect("n > 0");
        let mut inhabited = vec![false; max as usize + 1];
        for &b in &assignment {
            inhabited[b as usize] = true;
        }
        if inhabited.iter().all(|&b| b) {
            out.push(RoundTemplate::from_blocks(&assignment));
        }
        // Odometer step over {0..n−1}ⁿ.
        let Some(pos) = assignment.iter().rposition(|&b| (b as usize) < n - 1) else {
            break;
        };
        assignment[pos] += 1;
        assignment[pos + 1..].fill(0);
    }
    out
}

/// All *ordered partitions* (sequences of disjoint non-empty blocks
/// covering `items`) — the combinatorial skeleton of one-round IS
/// executions: processes in earlier blocks are seen by later blocks.
///
/// The count is the ordered Bell number: 1, 1, 3, 13, 75, 541, … for
/// `|items|` = 0, 1, 2, 3, 4, 5. This is a thin adapter over the flat
/// iterative generator ([`round_templates`]), retained for callers that
/// want explicit block lists.
///
/// # Examples
///
/// ```
/// use gsb_topology::views::ordered_partitions;
///
/// assert_eq!(ordered_partitions(&[1, 2]).len(), 3);
/// assert_eq!(ordered_partitions(&[1, 2, 3]).len(), 13);
/// ```
#[must_use]
pub fn ordered_partitions(items: &[u32]) -> Vec<Vec<Vec<u32>>> {
    round_templates(items.len())
        .iter()
        .map(|template| template.blocks(items))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_partition_counts_are_fubini_numbers() {
        assert_eq!(ordered_partitions(&[]).len(), 1);
        assert_eq!(ordered_partitions(&[1]).len(), 1);
        assert_eq!(ordered_partitions(&[1, 2]).len(), 3);
        assert_eq!(ordered_partitions(&[1, 2, 3]).len(), 13);
        assert_eq!(ordered_partitions(&[1, 2, 3, 4]).len(), 75);
    }

    #[test]
    fn template_counts_are_fubini_numbers_through_n6() {
        // The iterative generator pinned through n = 6 (the adapter above
        // covers the same counts for the explicit-blocks API).
        for (n, fubini) in [
            (0usize, 1usize),
            (1, 1),
            (2, 3),
            (3, 13),
            (4, 75),
            (5, 541),
            (6, 4683),
        ] {
            assert_eq!(round_templates(n).len(), fubini, "n = {n}");
        }
    }

    #[test]
    fn templates_encode_prefix_visibility() {
        // Every template row is sorted, contains its own process, and is
        // exactly the union of the blocks up to the process's own.
        for template in round_templates(4) {
            for p in 0..4 {
                let seen = template.seen_of(p);
                assert!(seen.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
                assert!(seen.contains(&(p as u32)), "a process sees itself");
                for q in 0..4u32 {
                    let expected = template.block[q as usize] <= template.block[p];
                    assert_eq!(seen.contains(&q), expected, "prefix rule at p={p} q={q}");
                }
            }
            // The seen sets along one template are prefix unions, so they
            // are totally ordered by inclusion.
            for p in 0..4 {
                for q in 0..4 {
                    let (a, b) = (template.seen_of(p), template.seen_of(q));
                    if a.len() <= b.len() {
                        assert!(a.iter().all(|x| b.contains(x)), "prefix chains nest");
                    }
                }
            }
        }
    }

    #[test]
    fn template_blocks_adapter_matches_seed_partitions() {
        // The adapter reproduces the seed's recursive enumeration as a
        // set (order differs): same blocks, same multiplicities.
        fn seed_ordered_partitions(items: &[u32]) -> Vec<Vec<Vec<u32>>> {
            if items.is_empty() {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            let n = items.len();
            for mask in 1u32..(1 << n) {
                let mut block = Vec::new();
                let mut rest = Vec::new();
                for (i, &item) in items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        block.push(item);
                    } else {
                        rest.push(item);
                    }
                }
                for mut tail in seed_ordered_partitions(&rest) {
                    let mut partition = vec![block.clone()];
                    partition.append(&mut tail);
                    out.push(partition);
                }
            }
            out
        }
        for items in [vec![1u32, 2, 3], vec![2, 5, 7, 9]] {
            let mut new: Vec<_> = ordered_partitions(&items);
            let mut seed = seed_ordered_partitions(&items);
            new.sort();
            seed.sort();
            assert_eq!(new, seed, "items = {items:?}");
        }
    }

    #[test]
    fn ordered_partitions_cover_and_are_disjoint() {
        for partition in ordered_partitions(&[1, 2, 3]) {
            let mut all: Vec<u32> = partition.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![1, 2, 3]);
            assert!(partition.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn signatures_identify_order_isomorphic_views() {
        // Solo views are all isomorphic regardless of id.
        let solo_a = View::one_round(3, &[3]);
        let solo_b = View::one_round(7, &[7]);
        assert_eq!(solo_a.signature(), solo_b.signature());

        // Own-rank-within-seen matters.
        let low = View::one_round(1, &[1, 5]);
        let high = View::one_round(5, &[1, 5]);
        assert_ne!(low.signature(), high.signature());

        // Size matters.
        let pair = View::one_round(1, &[1, 2]);
        let triple = View::one_round(1, &[1, 2, 3]);
        assert_ne!(pair.signature(), triple.signature());
    }

    #[test]
    fn signature_is_idempotent() {
        let v = View::one_round(4, &[2, 4, 9]);
        assert_eq!(v.signature(), v.signature().signature());
    }

    #[test]
    fn nested_views_canonicalize_recursively() {
        // p3 saw p1's solo view in round 2; relabelling must reach inside.
        let inner_a = View::one_round(1, &[1]);
        let outer_a = View::Round {
            id: 3,
            seen: vec![(1, inner_a.clone()), (3, View::one_round(3, &[1, 3]))],
        };
        let inner_b = View::one_round(2, &[2]);
        let outer_b = View::Round {
            id: 9,
            seen: vec![(2, inner_b.clone()), (9, View::one_round(9, &[2, 9]))],
        };
        assert_eq!(outer_a.signature(), outer_b.signature());
    }

    #[test]
    fn depth_counts_rounds() {
        assert_eq!(View::Initial { id: 1 }.depth(), 0);
        assert_eq!(View::one_round(1, &[1, 2]).depth(), 1);
        let nested = View::Round {
            id: 1,
            seen: vec![(1, View::one_round(1, &[1]))],
        };
        assert_eq!(nested.depth(), 2);
    }

    #[test]
    fn reversed_signature_is_an_involution_swapping_ranks() {
        // "Self low of a pair" ↔ "self high of a pair".
        let low = View::one_round(1, &[1, 5]).signature();
        let high = View::one_round(5, &[1, 5]).signature();
        assert_eq!(low.reversed_signature(), high);
        assert_eq!(high.reversed_signature(), low);
        // Involution on a deeper view.
        let nested = View::Round {
            id: 3,
            seen: vec![
                (1, View::one_round(1, &[1])),
                (3, View::one_round(3, &[1, 3])),
            ],
        };
        let rev = nested.reversed_signature();
        assert_eq!(rev.reversed_signature(), nested.signature());
        // Solo views are rank-symmetric: fixed by reversal.
        let solo = View::one_round(4, &[4]);
        assert_eq!(solo.reversed_signature(), solo.signature());
    }

    #[test]
    fn arena_interning_matches_structural_equality() {
        let mut arena = ViewArena::new();
        let a = arena.intern(&View::one_round(2, &[2, 5]));
        let b = arena.intern(&View::one_round(2, &[2, 5]));
        let c = arena.intern(&View::one_round(2, &[2, 4]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.view(a), View::one_round(2, &[2, 5]));
    }

    #[test]
    fn arena_signature_agrees_with_view_signature() {
        let mut arena = ViewArena::new();
        let views = [
            View::one_round(2, &[2, 5]),
            View::one_round(1, &[1, 4]),
            View::one_round(4, &[1, 4]),
            View::Round {
                id: 9,
                seen: vec![
                    (2, View::one_round(2, &[2])),
                    (9, View::one_round(9, &[2, 9])),
                ],
            },
        ];
        for view in &views {
            let key = arena.intern(view);
            let sig = arena.signature(key);
            assert_eq!(arena.view(sig), view.signature(), "{view:?}");
            // Memoized: second call is the same key.
            assert_eq!(arena.signature(key), sig);
        }
        // Order-isomorphic views share one signature key.
        let a = arena.intern(&views[0]);
        let b = arena.intern(&views[1]);
        assert_eq!(arena.signature(a), arena.signature(b));
    }

    #[test]
    fn arena_round_trip_preserves_nested_views() {
        let mut arena = ViewArena::new();
        let nested = View::Round {
            id: 3,
            seen: vec![
                (1, View::one_round(1, &[1])),
                (3, View::one_round(3, &[1, 3])),
            ],
        };
        let key = arena.intern(&nested);
        assert_eq!(arena.view(key), nested);
        assert_eq!(arena.id(key), 3);
    }

    #[test]
    fn deep_shared_dag_signature_is_linear_not_exponential() {
        // Regression: `relabel`/`collect_support` used to recurse once per
        // *path*, so a hash-consed chain where each level references both
        // previous-level views fanned out to 2^depth walks. At depth 64
        // that would never terminate; the memoized iterative walk visits
        // each of the ~2·depth shared nodes once.
        let mut arena = ViewArena::new();
        let depth = 64u32;
        let (mut a, mut b) = (arena.initial(1), arena.initial(2));
        for _ in 0..depth {
            let next_a = arena.round(1, vec![(1, a), (2, b)]);
            let next_b = arena.round(2, vec![(1, a), (2, b)]);
            (a, b) = (next_a, next_b);
        }
        let interned_before = arena.len();
        let sig_a = arena.signature(a);
        let sig_b = arena.signature(b);
        assert_ne!(sig_a, sig_b, "own rank differs");
        // Ids 1..2 are already canonical, so the signature is the view
        // itself and relabelling interned nothing new.
        assert_eq!(sig_a, a);
        assert_eq!(sig_b, b);
        assert_eq!(arena.len(), interned_before);
        // A non-canonical support ({3,7}) exercises the relabelling walk
        // itself on the same deep DAG shape.
        let (mut c, mut d) = (arena.initial(3), arena.initial(7));
        for _ in 0..depth {
            let next_c = arena.round(3, vec![(3, c), (7, d)]);
            let next_d = arena.round(7, vec![(3, c), (7, d)]);
            (c, d) = (next_c, next_d);
        }
        assert_eq!(arena.signature(c), sig_a, "order-isomorphic deep DAGs");
        assert_eq!(arena.signature(d), sig_b);
    }

    #[test]
    #[should_panic(expected = "seen at most once per round")]
    fn repeated_identity_in_seen_is_rejected() {
        // A repeated identity is a malformed view (one IS round shows
        // each process at most once); accepting it would let the
        // relabelling machinery intern non-canonical nodes.
        let mut arena = ViewArena::new();
        let a = arena.initial(2);
        let b = arena.round(2, vec![(2, a)]);
        arena.round(3, vec![(2, a), (2, b), (3, a)]);
    }

    #[test]
    fn round_from_slice_matches_round() {
        let mut arena = ViewArena::new();
        let x = arena.initial(1);
        let y = arena.initial(4);
        let via_vec = arena.round(4, vec![(4, y), (1, x)]);
        let via_slice = arena.round_from_slice(4, &[(1, x), (4, y)]);
        assert_eq!(via_vec, via_slice);
        assert_eq!(arena.view(via_slice), View::one_round(4, &[1, 4]));
    }

    /// Reference permutation action on recursive views: relabel every
    /// identity and re-sort seen lists (what [`ViewArena::permute`]
    /// computes key-level).
    fn permute_view(view: &View, perm: &[u32]) -> View {
        match view {
            View::Initial { id } => View::Initial {
                id: perm[(*id - 1) as usize],
            },
            View::Round { id, seen } => {
                let mut seen: Vec<(u32, View)> = seen
                    .iter()
                    .map(|(q, inner)| (perm[(*q - 1) as usize], permute_view(inner, perm)))
                    .collect();
                seen.sort();
                View::Round {
                    id: perm[(*id - 1) as usize],
                    seen,
                }
            }
        }
    }

    #[test]
    fn arena_permute_matches_view_level_action() {
        let mut arena = ViewArena::new();
        let views = [
            View::one_round(1, &[1, 2]),
            View::one_round(2, &[1, 2, 3]),
            View::Round {
                id: 3,
                seen: vec![
                    (1, View::one_round(1, &[1])),
                    (3, View::one_round(3, &[1, 3])),
                ],
            },
        ];
        // All six permutations of {1,2,3}, ids 0..6.
        let perms: Vec<Vec<u32>> = vec![
            vec![1, 2, 3],
            vec![1, 3, 2],
            vec![2, 1, 3],
            vec![2, 3, 1],
            vec![3, 1, 2],
            vec![3, 2, 1],
        ];
        for view in &views {
            let key = arena.intern(view);
            for (perm_id, perm) in perms.iter().enumerate() {
                let image = arena.permute(key, perm, perm_id as u32);
                assert_eq!(
                    arena.view(image),
                    permute_view(view, perm),
                    "{view:?} under {perm:?}"
                );
                // Memoized: the second call returns the same key.
                assert_eq!(arena.permute(key, perm, perm_id as u32), image);
            }
            // Identity is free (the order-preserving fast path).
            assert_eq!(arena.permute(key, &[1, 2, 3], 0), key);
        }
    }

    #[test]
    fn arena_cmp_views_matches_derived_view_order() {
        let mut arena = ViewArena::new();
        let views = [
            View::Initial { id: 1 },
            View::Initial { id: 2 },
            View::one_round(1, &[1]),
            View::one_round(1, &[1, 2]),
            View::one_round(2, &[1, 2]),
            View::one_round(2, &[2, 3]),
            View::Round {
                id: 1,
                seen: vec![(1, View::one_round(1, &[1, 2]))],
            },
        ];
        let keys: Vec<ViewKey> = views.iter().map(|v| arena.intern(v)).collect();
        for (i, a) in views.iter().enumerate() {
            for (j, b) in views.iter().enumerate() {
                assert_eq!(
                    arena.cmp_views(keys[i], keys[j]),
                    a.cmp(b),
                    "cmp({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn view_order_ranks_agree_with_materialized_view_order() {
        // A mixed-depth arena (shared subtrees, varying supports): bulk
        // ranks must order keys exactly as the derived Ord on
        // materialized views does.
        let mut arena = ViewArena::new();
        let mut keys = Vec::new();
        for id in 1..=4u32 {
            keys.push(arena.initial(id));
        }
        for view in [
            View::one_round(1, &[1]),
            View::one_round(1, &[1, 2]),
            View::one_round(2, &[1, 2]),
            View::one_round(3, &[1, 2, 3]),
            View::Round {
                id: 2,
                seen: vec![
                    (2, View::one_round(2, &[2])),
                    (3, View::one_round(3, &[2, 3])),
                ],
            },
            View::Round {
                id: 1,
                seen: vec![(1, View::one_round(1, &[1, 2]))],
            },
        ] {
            keys.push(arena.intern(&view));
        }
        let ranks = arena.view_order_ranks();
        let mut by_rank = keys.clone();
        by_rank.sort_unstable_by_key(|k| ranks[k.index()]);
        let mut by_view = keys.clone();
        by_view.sort_unstable_by_key(|&k| arena.view(k));
        assert_eq!(by_rank, by_view);
        // And the pairwise comparator agrees too.
        for &a in &keys {
            for &b in &keys {
                assert_eq!(
                    ranks[a.index()].cmp(&ranks[b.index()]),
                    arena.view(a).cmp(&arena.view(b)),
                    "{:?} vs {:?}",
                    arena.view(a),
                    arena.view(b)
                );
            }
        }
    }

    #[test]
    fn support_len_counts_distinct_ids() {
        let mut arena = ViewArena::new();
        let key = arena.intern(&View::Round {
            id: 5,
            seen: vec![
                (2, View::one_round(2, &[2, 7])),
                (5, View::Initial { id: 5 }),
            ],
        });
        assert_eq!(arena.support_len(key), 3);
        let solo = arena.initial(9);
        assert_eq!(arena.support_len(solo), 1);
    }

    #[test]
    fn id_support_collects_nested_ids() {
        let nested = View::Round {
            id: 5,
            seen: vec![
                (2, View::one_round(2, &[2, 7])),
                (5, View::Initial { id: 5 }),
            ],
        };
        let support: Vec<u32> = nested.id_support().into_iter().collect();
        assert_eq!(support, vec![2, 5, 7]);
    }
}
