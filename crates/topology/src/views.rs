//! Process views in iterated immediate snapshot (IIS) executions, and
//! their order-type canonicalization.
//!
//! A comparison-based algorithm cannot distinguish two local states whose
//! identity content is *order-isomorphic* (Section 2.2); the decision map
//! of any such algorithm is therefore constant on order-isomorphism
//! classes of views. [`View::signature`] computes a canonical form —
//! identities relabelled `1..k` preserving order, recursively — so that
//! two views get equal signatures iff they are order-isomorphic.

use std::collections::BTreeSet;

/// The local state (view) of a process after some IIS rounds.
///
/// Identities are abstract positive integers; only their relative order is
/// meaningful (the solvability checker fixes them to `1..n`, justified by
/// Theorem 2).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum View {
    /// Initial state: the process knows only its own identity.
    Initial {
        /// The process's identity.
        id: u32,
    },
    /// State after one more IS round: the process saw the previous-round
    /// views of a set of processes (always including itself).
    Round {
        /// The observing process's identity.
        id: u32,
        /// `(identity, previous view)` for every process seen, sorted by
        /// identity.
        seen: Vec<(u32, View)>,
    },
}

impl View {
    /// The identity of the process holding this view.
    #[must_use]
    pub fn id(&self) -> u32 {
        match self {
            View::Initial { id } | View::Round { id, .. } => *id,
        }
    }

    /// The set of identities occurring anywhere in the view.
    #[must_use]
    pub fn id_support(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        self.collect_ids(&mut out);
        out
    }

    fn collect_ids(&self, out: &mut BTreeSet<u32>) {
        match self {
            View::Initial { id } => {
                out.insert(*id);
            }
            View::Round { id, seen } => {
                out.insert(*id);
                for (q, view) in seen {
                    out.insert(*q);
                    view.collect_ids(out);
                }
            }
        }
    }

    /// Rewrites every identity through `relabel` (an order-preserving map
    /// is supplied by [`View::signature`]).
    fn relabelled(&self, relabel: &dyn Fn(u32) -> u32) -> View {
        match self {
            View::Initial { id } => View::Initial { id: relabel(*id) },
            View::Round { id, seen } => View::Round {
                id: relabel(*id),
                seen: seen
                    .iter()
                    .map(|(q, v)| (relabel(*q), v.relabelled(relabel)))
                    .collect(),
            },
        }
    }

    /// The canonical order-type signature: identities relabelled to
    /// `1..k` by rank within [`View::id_support`]. Two views are
    /// order-isomorphic — indistinguishable to a comparison-based
    /// process — iff their signatures are equal.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_topology::View;
    ///
    /// // Seeing {2,5} with own id 2 ≅ seeing {1,4} with own id 1…
    /// let a = View::one_round(2, &[2, 5]);
    /// let b = View::one_round(1, &[1, 4]);
    /// assert_eq!(a.signature(), b.signature());
    /// // …but not ≅ seeing {1,4} with own id 4.
    /// let c = View::one_round(4, &[1, 4]);
    /// assert_ne!(a.signature(), c.signature());
    /// ```
    #[must_use]
    pub fn signature(&self) -> View {
        let support: Vec<u32> = self.id_support().into_iter().collect();
        let relabel = |id: u32| -> u32 {
            (support
                .binary_search(&id)
                .expect("id is in its own support") as u32)
                + 1
        };
        self.relabelled(&relabel)
    }

    /// Convenience constructor for a one-round view: process `id` saw the
    /// initial states of `seen_ids` (must contain `id`).
    ///
    /// # Panics
    ///
    /// Panics if `seen_ids` does not contain `id`.
    #[must_use]
    pub fn one_round(id: u32, seen_ids: &[u32]) -> View {
        assert!(seen_ids.contains(&id), "a process always sees itself");
        let mut seen: Vec<(u32, View)> = seen_ids
            .iter()
            .map(|&q| (q, View::Initial { id: q }))
            .collect();
        seen.sort();
        View::Round { id, seen }
    }

    /// Number of rounds this view has been through.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            View::Initial { .. } => 0,
            View::Round { seen, .. } => 1 + seen.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
        }
    }
}

/// All *ordered partitions* (sequences of disjoint non-empty blocks
/// covering `items`) — the combinatorial skeleton of one-round IS
/// executions: processes in earlier blocks are seen by later blocks.
///
/// The count is the ordered Bell number: 1, 1, 3, 13, 75, 541, … for
/// `|items|` = 0, 1, 2, 3, 4, 5.
///
/// # Examples
///
/// ```
/// use gsb_topology::views::ordered_partitions;
///
/// assert_eq!(ordered_partitions(&[1, 2]).len(), 3);
/// assert_eq!(ordered_partitions(&[1, 2, 3]).len(), 13);
/// ```
#[must_use]
pub fn ordered_partitions(items: &[u32]) -> Vec<Vec<Vec<u32>>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    // Choose each non-empty subset as the first block (bitmask), recurse.
    let n = items.len();
    for mask in 1u32..(1 << n) {
        let mut block = Vec::new();
        let mut rest = Vec::new();
        for (i, &item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                block.push(item);
            } else {
                rest.push(item);
            }
        }
        for mut tail in ordered_partitions(&rest) {
            let mut partition = vec![block.clone()];
            partition.append(&mut tail);
            out.push(partition);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_partition_counts_are_fubini_numbers() {
        assert_eq!(ordered_partitions(&[]).len(), 1);
        assert_eq!(ordered_partitions(&[1]).len(), 1);
        assert_eq!(ordered_partitions(&[1, 2]).len(), 3);
        assert_eq!(ordered_partitions(&[1, 2, 3]).len(), 13);
        assert_eq!(ordered_partitions(&[1, 2, 3, 4]).len(), 75);
    }

    #[test]
    fn ordered_partitions_cover_and_are_disjoint() {
        for partition in ordered_partitions(&[1, 2, 3]) {
            let mut all: Vec<u32> = partition.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![1, 2, 3]);
            assert!(partition.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn signatures_identify_order_isomorphic_views() {
        // Solo views are all isomorphic regardless of id.
        let solo_a = View::one_round(3, &[3]);
        let solo_b = View::one_round(7, &[7]);
        assert_eq!(solo_a.signature(), solo_b.signature());

        // Own-rank-within-seen matters.
        let low = View::one_round(1, &[1, 5]);
        let high = View::one_round(5, &[1, 5]);
        assert_ne!(low.signature(), high.signature());

        // Size matters.
        let pair = View::one_round(1, &[1, 2]);
        let triple = View::one_round(1, &[1, 2, 3]);
        assert_ne!(pair.signature(), triple.signature());
    }

    #[test]
    fn signature_is_idempotent() {
        let v = View::one_round(4, &[2, 4, 9]);
        assert_eq!(v.signature(), v.signature().signature());
    }

    #[test]
    fn nested_views_canonicalize_recursively() {
        // p3 saw p1's solo view in round 2; relabelling must reach inside.
        let inner_a = View::one_round(1, &[1]);
        let outer_a = View::Round {
            id: 3,
            seen: vec![(1, inner_a.clone()), (3, View::one_round(3, &[1, 3]))],
        };
        let inner_b = View::one_round(2, &[2]);
        let outer_b = View::Round {
            id: 9,
            seen: vec![(2, inner_b.clone()), (9, View::one_round(9, &[2, 9]))],
        };
        assert_eq!(outer_a.signature(), outer_b.signature());
    }

    #[test]
    fn depth_counts_rounds() {
        assert_eq!(View::Initial { id: 1 }.depth(), 0);
        assert_eq!(View::one_round(1, &[1, 2]).depth(), 1);
        let nested = View::Round {
            id: 1,
            seen: vec![(1, View::one_round(1, &[1]))],
        };
        assert_eq!(nested.depth(), 2);
    }

    #[test]
    fn id_support_collects_nested_ids() {
        let nested = View::Round {
            id: 5,
            seen: vec![
                (2, View::one_round(2, &[2, 7])),
                (5, View::Initial { id: 5 }),
            ],
        };
        let support: Vec<u32> = nested.id_support().into_iter().collect();
        assert_eq!(support, vec![2, 5, 7]);
    }
}
