//! # gsb-topology — combinatorial topology for wait-free computability
//!
//! The machinery behind the paper's impossibility results (Theorem 11 and
//! the renaming lower bounds it cites), made executable for small `n`:
//!
//! * [`views`] — IIS process views and their order-type canonicalization
//!   (the comparison-based restriction of Section 2.2, mechanized).
//! * [`complex`] — chromatic simplicial complexes, pseudomanifold and
//!   strong-connectivity checks (the structural facts Theorem 11 uses).
//! * [`protocol`] — the standard chromatic subdivision `χ^r(Δ^{n−1})`:
//!   protocol complexes of `r`-round immediate-snapshot full-information
//!   algorithms.
//! * [`solvability`] — exhaustive search for *symmetric* simplicial
//!   decision maps: decides whether a GSB task is solvable by an
//!   `r`-round comparison-based IIS protocol, reproducing election's and
//!   WSB's impossibilities and renaming's small-`n` boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complex;
pub mod protocol;
pub mod solvability;
pub mod theorem11;
pub mod views;

pub use complex::{ChromaticComplex, Vertex, VertexId};
pub use protocol::{ordered_bell, protocol_complex};
pub use solvability::{solvable_in_rounds, SearchResult, SymmetricSearch};
pub use theorem11::{
    check_election_certificate, election_impossibility_certificate, CertificateFailure,
};
pub use views::View;
