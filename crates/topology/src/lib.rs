//! # gsb-topology — combinatorial topology for wait-free computability
//!
//! The machinery behind the paper's impossibility results (Theorem 11 and
//! the renaming lower bounds it cites), made executable for small `n`:
//!
//! * [`views`] — IIS process views, their order-type canonicalization
//!   (the comparison-based restriction of Section 2.2, mechanized), and
//!   the hash-consing [`ViewArena`] the builders run on.
//! * [`complex`] — chromatic simplicial complexes with packed `u32`
//!   vertex ids and exact `u128` ridge keys, pseudomanifold and
//!   strong-connectivity checks (the structural facts Theorem 11 uses),
//!   and the signature quotient feeding the solver.
//! * [`protocol`] — the standard chromatic subdivision `χ^r(Δ^{n−1})`:
//!   protocol complexes of `r`-round immediate-snapshot full-information
//!   algorithms, memoized process-wide per `(n, r)`.
//! * [`solvability`] — the symmetric decision-map search: decides whether
//!   a GSB task is solvable by an `r`-round comparison-based IIS
//!   protocol, reproducing election's and WSB's impossibilities and
//!   renaming's small-`n` boundaries.
//! * [`cdcl`] — the conflict-driven engine behind the search: clause
//!   learning, symmetry-orbit pruning, orbit-granularity decisions, and
//!   the solver portfolio that pushed the solvability frontier to the
//!   `r = 2` UNSAT certificates.
//! * [`local`] — the greedy/min-conflicts completion engine for
//!   suspected-SAT instances and the CDCL-vs-local completion race.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cdcl;
pub mod complex;
mod error;
pub mod local;
pub mod protocol;
pub mod solvability;
pub mod theorem11;
pub mod views;

pub use cdcl::{CdclConfig, SearchStats};
pub use complex::{ridge_key, ChromaticComplex, RidgeKey, SignatureQuotient, Vertex, VertexId};
pub use error::{Error, Result};
pub use local::LocalConfig;
pub use protocol::{
    ordered_bell, process_permutations, protocol_complex, protocol_complex_reference,
    protocol_complex_with_stats, shared_protocol_complex, BuildStats, OrbitBuildStats,
    OrbitFrontier,
};
#[allow(deprecated)]
pub use solvability::solvable_in_rounds;
pub use solvability::{ConstraintSystem, DecisionMap, SearchMode, SearchResult, SymmetricSearch};
pub use theorem11::{
    check_election_certificate, election_impossibility_certificate, CertificateFailure,
};
pub use views::{ordered_partitions, round_templates, RoundTemplate, View, ViewArena, ViewKey};
