#!/usr/bin/env bash
# Ticket-poll gate: solver hot paths must not grow unpolled loops.
#
# Every long-running loop in the files below is expected to poll its
# governance ticket (see `gsb_core::govern`) often enough that a
# deadline, budget trip, or cancellation is observed within one polling
# interval. Poll sites are marked with a literal
#
#     // ticket.check poll site (<where/stride>)
#
# comment next to the check. This script pins, per file, the current
# loop count and the minimum marker count. Adding a loop to a hot path
# trips the gate until you either poll the ticket inside it (and mark
# the site) or consciously decide the loop is bounded-tiny — in both
# cases bump the pinned numbers here in the same change, so the review
# sees the decision.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

check() {
  local file=$1 max_loops=$2 min_markers=$3
  local loops markers
  loops=$(grep -cE '^[[:space:]]*(loop \{|while[ (])' "$file" || true)
  markers=$(grep -c 'ticket.check poll site' "$file" || true)
  if [ "$loops" -gt "$max_loops" ]; then
    echo "FAIL: $file has $loops loops (pinned $max_loops)." >&2
    echo "  A new loop in a solver hot path must poll its ticket (mark the" >&2
    echo "  site with '// ticket.check poll site (...)'); then bump the" >&2
    echo "  pinned counts in ci/check_ticket_polls.sh in the same change." >&2
    status=1
  elif [ "$markers" -lt "$min_markers" ]; then
    echo "FAIL: $file has $markers ticket-poll markers (pinned >= $min_markers)." >&2
    echo "  A poll site was removed; governed loops must keep polling." >&2
    status=1
  else
    echo "ok: $file ($loops loops, $markers poll markers)"
  fi
}

# file                              max loops   min poll markers
# cdcl.rs grew two bounded-tiny loops with orbit-granularity decisions:
# the orbit-queue drain in pick_branch (bounded by the orbit size, <= a
# handful of classes) and the union-find path-halving walk in
# build_class_orbits (bounded by the orbit forest depth).
check crates/topology/src/cdcl.rs         13          2
check crates/topology/src/solvability.rs   2          1
check crates/topology/src/protocol.rs      1          4
# local.rs: the repair engine's restart/move loops are all bounded
# `for` loops; the move loop polls on a 4096-step stride and every
# restart's construction charges its decisions.
check crates/topology/src/local.rs         0          2

exit "$status"
